package mem

import (
	"math"
	"sync"
	"testing"
)

// TestLedgerMergeMatchesSerial asserts the per-worker-then-merge pattern:
// many goroutines accumulating into private ledgers, merged in index order,
// must reproduce the single serial ledger bit for bit. This test runs under
// the CI -race job — a shared ledger without the pattern is a data race.
func TestLedgerMergeMatchesSerial(t *testing.T) {
	devices := []*Device{STTMRAM(), SRAM(30 << 20), DRAM()}
	const workers = 8
	const perWorker = 200

	charge := func(l *EnergyLedger, worker int) {
		for i := 0; i < perWorker; i++ {
			d := devices[(worker+i)%len(devices)]
			kind := Read
			if i%3 == 0 {
				kind = Write
			}
			l.Record(d, kind, int64(512+worker*64+i))
		}
	}

	// Serial reference: one ledger, workers in order.
	serial := NewLedger()
	for w := 0; w < workers; w++ {
		charge(serial, w)
	}

	// Parallel: one private ledger per worker, merged in index order.
	shards := make([]*EnergyLedger, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shards[w] = NewLedger()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			charge(shards[w], w)
		}(w)
	}
	wg.Wait()
	merged := NewLedger()
	for _, s := range shards {
		merged.Merge(s)
	}

	// Bit counts are integers and must match exactly; energy/time sums are
	// floats whose partial-sum grouping differs between the serial and the
	// sharded fold, so they agree to relative epsilon. What must be exact
	// is determinism: merging the same shards in the same order twice.
	relClose := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-9*math.Abs(want)
	}
	if got, want := merged.TotalEnergyPJ(), serial.TotalEnergyPJ(); !relClose(got, want) {
		t.Errorf("merged energy %v != serial %v", got, want)
	}
	if got, want := merged.TotalTimeNS(), serial.TotalTimeNS(); !relClose(got, want) {
		t.Errorf("merged time %v != serial %v", got, want)
	}
	for _, d := range devices {
		got, want := merged.Total(d.Name), serial.Total(d.Name)
		if got.ReadBits != want.ReadBits || got.WriteBits != want.WriteBits {
			t.Errorf("%s: merged bits %+v != serial %+v", d.Name, got, want)
		}
		if !relClose(got.EnergyPJ, want.EnergyPJ) || !relClose(got.TimeNS, want.TimeNS) {
			t.Errorf("%s: merged %+v != serial %+v", d.Name, got, want)
		}
	}
	// Determinism: re-merging the same shards in the same order reproduces
	// the merged totals bit for bit — the engine's reproducibility rests on
	// merge order, not scheduling order.
	again := NewLedger()
	for _, s := range shards {
		again.Merge(s)
	}
	if again.TotalEnergyPJ() != merged.TotalEnergyPJ() {
		t.Error("same merge order must reproduce totals exactly")
	}
	if got, want := len(merged.Records()), len(serial.Records()); got != want {
		t.Errorf("merged %d records, serial %d", got, want)
	}
}

func TestCompactLedgerKeepsTotalsDropsRecords(t *testing.T) {
	full := NewLedger()
	compact := NewCompactLedger()
	d := STTMRAM()
	for i := 0; i < 10; i++ {
		full.Record(d, Read, 1024)
		compact.Record(d, Read, 1024)
	}
	if compact.Records() != nil {
		t.Errorf("compact ledger kept %d records", len(compact.Records()))
	}
	if got, want := compact.Total(d.Name), full.Total(d.Name); got != want {
		t.Errorf("compact totals %+v != full %+v", got, want)
	}
	// Merging a compact ledger into a full one carries the totals.
	sum := NewLedger()
	sum.Merge(compact)
	sum.Merge(nil) // no-op
	if got, want := sum.TotalEnergyPJ(), full.TotalEnergyPJ(); got != want {
		t.Errorf("merged energy %v != %v", got, want)
	}
}
