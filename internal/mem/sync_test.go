package mem

import (
	"sync"
	"testing"
)

// TestSyncLedgerConcurrent hammers one SyncLedger from many goroutines —
// recorders and a live MergeInto reader interleaved, the serving daemon's
// access pattern — and checks the final totals are exact. Run under -race
// this is also the data-race proof the raw EnergyLedger cannot give.
func TestSyncLedgerConcurrent(t *testing.T) {
	s := NewSyncLedger()
	mram := STTMRAM()
	const (
		goroutines = 8
		perG       = 200
		bits       = 128
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(kind AccessKind) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Record(mram, kind, bits)
			}
		}(AccessKind(g % 2))
	}
	// A concurrent /statsz-style reader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.MergeInto(NewCompactLedger())
		}
	}()
	wg.Wait()

	total := s.Total(mram.Name)
	wantPerKind := int64(goroutines / 2 * perG * bits)
	if total.ReadBits != wantPerKind || total.WriteBits != wantPerKind {
		t.Fatalf("totals read %d write %d, want %d each", total.ReadBits, total.WriteBits, wantPerKind)
	}
	if s.TotalEnergyPJ() <= 0 {
		t.Fatal("recorded traffic must cost energy")
	}

	// MergeInto hands the same totals to a private aggregation ledger.
	dst := NewCompactLedger()
	s.MergeInto(dst)
	if got := dst.Total(mram.Name); got != total {
		t.Fatalf("MergeInto copied %+v, want %+v", got, total)
	}
}
