package qnn

import (
	"math/rand"
	"testing"

	"dronerl/internal/nn"
	"dronerl/internal/tensor"
)

// TestQuantBackendMatchesIntegerEngine asserts the backend's greedy argmax
// is exactly the compiled integer network's decision, and that every Infer
// charges one full weight stream against the STT-MRAM ledger.
func TestQuantBackendMatchesIntegerEngine(t *testing.T) {
	spec := nn.NavNetSpec()
	net := spec.Build()
	net.Init(rand.New(rand.NewSource(11)))
	b, err := NewBackend(net)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Compile(net, Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(12))
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		obs := tensor.New(1, nn.NavNetInput, nn.NavNetInput)
		obs.RandUniform(rng, 1)
		q := b.Infer(obs)
		got := 0
		for i, v := range q {
			if v > q[got] {
				got = i
			}
		}
		if want := ref.Greedy(obs); got != want {
			t.Errorf("trial %d: backend greedy %d, integer engine %d", trial, got, want)
		}
	}

	cost := b.Cost()
	if cost.Inferences != trials {
		t.Errorf("cost counted %d inferences, want %d", cost.Inferences, trials)
	}
	if cost.EnergyMJ <= 0 || cost.LatencyMS <= 0 {
		t.Errorf("cost %+v must price the weight stream", cost)
	}
	mram := b.Ledger().Total("STT-MRAM")
	if want := trials * ref.WeightBits(); mram.ReadBits != want {
		t.Errorf("ledger read %d bits, want %d (one weight stream per inference)", mram.ReadBits, want)
	}
	if mram.WriteBits != 0 {
		t.Errorf("inference wrote %d bits to the stack", mram.WriteBits)
	}
}

func TestQuantBackendRegistered(t *testing.T) {
	spec := nn.NavNetSpec()
	net := spec.Build()
	net.Init(rand.New(rand.NewSource(3)))
	b, err := nn.NewBackendFor("quant", net, spec, nn.L3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "quant" {
		t.Errorf("name %q", b.Name())
	}
	if _, ok := b.(nn.CostReporter); !ok {
		t.Error("quant backend must report costs")
	}
}
