package qnn

import (
	"fmt"

	"dronerl/internal/fixed"
	"dronerl/internal/nn"
)

// Options configures compilation.
type Options struct {
	// WeightFmt encodes weights and biases (default Q2.13: CNN weights
	// are small, so spending bits on fraction preserves accuracy).
	WeightFmt fixed.Format
	// ActFmt encodes activations (default Q7.8, matching the
	// accelerator's activation range).
	ActFmt fixed.Format
}

func (o *Options) setDefaults() {
	zero := fixed.Format{}
	if o.WeightFmt == zero {
		o.WeightFmt = fixed.Format{Frac: 13}
	}
	if o.ActFmt == zero {
		o.ActFmt = fixed.Q78
	}
}

// Compile converts a trained float network into the integer inference
// engine. Supported layers: Conv2D, Dense, ReLU, MaxPool, Flatten; LRN is
// rejected (the deployable NavNet does not use it — the full AlexNet keeps
// the float reference path for training).
func Compile(src *nn.Network, opts Options) (*Network, error) {
	opts.setDefaults()
	out := &Network{InFmt: opts.ActFmt}
	for _, l := range src.Layers {
		switch t := l.(type) {
		case *nn.Conv2D:
			q := &Conv2D{
				LayerName: t.LayerName,
				InC:       t.InC, OutC: t.OutC,
				K: t.KH, Stride: t.Stride, Pad: t.Pad,
				W:    quantize(t.Weight.W.Data(), opts.WeightFmt),
				B:    quantize(t.Bias.W.Data(), opts.WeightFmt),
				WFmt: opts.WeightFmt, InFmt: opts.ActFmt, OutFmt: opts.ActFmt,
			}
			if t.KH != t.KW {
				return nil, fmt.Errorf("qnn: %s has non-square kernel %dx%d", t.LayerName, t.KH, t.KW)
			}
			out.Layers = append(out.Layers, q)
		case *nn.Dense:
			out.Layers = append(out.Layers, &Dense{
				LayerName: t.LayerName,
				In:        t.In, Out: t.Out,
				W:    quantize(t.Weight.W.Data(), opts.WeightFmt),
				B:    quantize(t.Bias.W.Data(), opts.WeightFmt),
				WFmt: opts.WeightFmt, InFmt: opts.ActFmt, OutFmt: opts.ActFmt,
			})
		case *nn.ReLU:
			out.Layers = append(out.Layers, &ReLU{LayerName: t.LayerName})
		case *nn.MaxPool:
			out.Layers = append(out.Layers, &MaxPool{LayerName: t.LayerName, K: t.K, Stride: t.Stride})
		case *nn.Flatten:
			out.Layers = append(out.Layers, &Flatten{LayerName: t.LayerName})
		case *nn.LRN:
			return nil, fmt.Errorf("qnn: %s: LRN is not supported by the integer engine", t.LayerName)
		default:
			return nil, fmt.Errorf("qnn: unsupported layer type %T", l)
		}
	}
	return out, nil
}

func quantize(xs []float32, f fixed.Format) fixed.Vec {
	out := make(fixed.Vec, len(xs))
	for i, x := range xs {
		out[i] = f.FromFloat(float64(x))
	}
	return out
}
