package qnn

import (
	"fmt"

	"dronerl/internal/fixed"
	"dronerl/internal/nn"
	"dronerl/internal/tensor"
)

// Fixed-point training engine: forward, backward and weight update executed
// in the accelerator's integer arithmetic, the regime Roy et al. study for
// MRAM training scratchpads (PAPERS.md). Where the inference engine
// (qnn.go) saturates every MAC — the PE datapath's behaviour — the training
// engine follows the int16 GEMM kernels' contract (tensor/int16.go):
// products widen into wrap-around accumulators and saturate exactly once at
// the final narrow, which is what lets the Dense hot path run on the
// vectorized Dot16/MatVec16 kernels. Gradients accumulate in 64-bit
// Q-format scratchpads (the "sum of weight and bias gradients" scratchpad
// of Section V, widened so batch accumulation cannot wrap), and the weight
// update applies lr·grad with *stochastic* rounding (fixed.SR): a
// deterministic round would silently drop every update below half a weight
// LSB — most late-training updates — where the stochastic round is correct
// in expectation, so small gradients keep accumulating across steps.
//
// Format plan (defaults): activations Q7.8, weights Q2.13, activation
// gradients Q7.8, learning-rate scale 2^16. Accumulator scales follow from
// the products: forward 2^(8+13), weight gradients 2^(8+8), input
// gradients 2^(8+13).

// TrainOptions configures CompileTrainable. Zero values select the
// documented defaults.
type TrainOptions struct {
	// WeightFmt encodes weights and biases (default Q2.13, as Compile).
	WeightFmt fixed.Format
	// ActFmt encodes activations (default Q7.8, as Compile).
	ActFmt fixed.Format
	// GradFmt encodes activation gradients flowing backward (default Q7.8).
	GradFmt fixed.Format
	// LRFrac is the fixed-point fraction of the scaled learning rate
	// (default 16 bits).
	LRFrac uint
	// Seed seeds the stochastic-rounding stream; a fixed seed makes the
	// whole training run bit-reproducible (default 1).
	Seed uint64
}

func (o *TrainOptions) setDefaults() {
	zero := fixed.Format{}
	if o.WeightFmt == zero {
		o.WeightFmt = fixed.Format{Frac: 13}
	}
	if o.ActFmt == zero {
		o.ActFmt = fixed.Q78
	}
	if o.GradFmt == zero {
		o.GradFmt = fixed.Q78
	}
	if o.LRFrac == 0 {
		o.LRFrac = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// sat16 clamps a 64-bit value into int16.
func sat16(v int64) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// narrow64 rescales a 2^shift-scaled accumulator to an int16 word with
// round-half-up and one final saturation — the training engine's only
// saturation point, per the wrap-around contract.
func narrow64(v int64, shift uint) int16 {
	if shift > 0 {
		v = (v + int64(1)<<(shift-1)) >> shift
	}
	return sat16(v)
}

// tLayer is one stage of the fixed-point training pipeline. forward caches
// whatever backward needs for the same sample; backward accumulates
// gradient scratchpads and returns the input gradient in GradFmt.
type tLayer interface {
	name() string
	forward(in []int16, shape [3]int) ([]int16, [3]int)
	backward(g []int16, needInput bool) []int16
	// update applies the accumulated gradients with the given fixed-point
	// learning rate and clears the scratchpads; stateless layers no-op.
	update(lrFixed int64, lrFrac uint, sr *fixed.SR)
	// gradMaxAbs returns the largest |gradient| in real units, for clipping.
	gradMaxAbs() float64
	// scaleGrads multiplies every gradient scratchpad by sFixed/2^15.
	scaleGrads(sFixed int64)
	// weightBits is the layer's weight-store footprint in bits (0 for
	// stateless layers).
	weightBits() int64
}

// tConv is the fixed-point trainable convolution (CHW, square kernel).
type tConv struct {
	layerName            string
	inC, outC            int
	k, stride, pad       int
	w, b                 []int16
	gw, gb               []int64
	aFrac, wFrac, gFrac  uint
	in                   []int16
	inH, inW, outH, outW int
	out                  []int16
	gin                  []int64
	ginW                 []int16
}

func (c *tConv) name() string      { return c.layerName }
func (c *tConv) weightBits() int64 { return int64(len(c.w)+len(c.b)) * 16 }

func (c *tConv) forward(in []int16, shape [3]int) ([]int16, [3]int) {
	h, w := shape[1], shape[2]
	oh := (h+2*c.pad-c.k)/c.stride + 1
	ow := (w+2*c.pad-c.k)/c.stride + 1
	c.in, c.inH, c.inW, c.outH, c.outW = in, h, w, oh, ow
	if cap(c.out) < c.outC*oh*ow {
		c.out = make([]int16, c.outC*oh*ow)
	}
	c.out = c.out[:c.outC*oh*ow]
	colw := c.inC * c.k * c.k
	for oc := 0; oc < c.outC; oc++ {
		wrow := c.w[oc*colw : (oc+1)*colw]
		bias := int64(c.b[oc]) << c.aFrac // to the 2^(a+w) product scale
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				acc := bias
				p := 0
				for ic := 0; ic < c.inC; ic++ {
					base := ic * h * w
					for ky := 0; ky < c.k; ky++ {
						iy := oy*c.stride - c.pad + ky
						for kx := 0; kx < c.k; kx++ {
							ix := ox*c.stride - c.pad + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								acc += int64(in[base+iy*w+ix]) * int64(wrow[p])
							}
							p++
						}
					}
				}
				c.out[oc*oh*ow+oy*ow+ox] = narrow64(acc, c.wFrac)
			}
		}
	}
	return c.out, [3]int{c.outC, oh, ow}
}

func (c *tConv) backward(g []int16, needInput bool) []int16 {
	h, w, oh, ow := c.inH, c.inW, c.outH, c.outW
	colw := c.inC * c.k * c.k
	if needInput {
		if cap(c.gin) < c.inC*h*w {
			c.gin = make([]int64, c.inC*h*w)
		}
		c.gin = c.gin[:c.inC*h*w]
		for i := range c.gin {
			c.gin[i] = 0
		}
	}
	for oc := 0; oc < c.outC; oc++ {
		wrow := c.w[oc*colw : (oc+1)*colw]
		grow := c.gw[oc*colw : (oc+1)*colw]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				gv := int64(g[oc*oh*ow+oy*ow+ox])
				if gv == 0 {
					continue
				}
				c.gb[oc] += gv
				p := 0
				for ic := 0; ic < c.inC; ic++ {
					base := ic * h * w
					for ky := 0; ky < c.k; ky++ {
						iy := oy*c.stride - c.pad + ky
						for kx := 0; kx < c.k; kx++ {
							ix := ox*c.stride - c.pad + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								pix := base + iy*w + ix
								grow[p] += gv * int64(c.in[pix])
								if needInput {
									c.gin[pix] += gv * int64(wrow[p])
								}
							}
							p++
						}
					}
				}
			}
		}
	}
	if !needInput {
		return nil
	}
	if cap(c.ginW) < len(c.gin) {
		c.ginW = make([]int16, len(c.gin))
	}
	c.ginW = c.ginW[:len(c.gin)]
	for i, v := range c.gin {
		c.ginW[i] = narrow64(v, c.wFrac) // scale g+w -> g
	}
	return c.ginW
}

func (c *tConv) update(lrFixed int64, lrFrac uint, sr *fixed.SR) {
	wShift := c.gFrac + c.aFrac + lrFrac - c.wFrac
	for i, gv := range c.gw {
		if gv != 0 {
			c.w[i] = sat16(int64(c.w[i]) - sr.Round(gv*lrFixed, wShift))
		}
		c.gw[i] = 0
	}
	bShift := c.gFrac + lrFrac - c.wFrac
	for i, gv := range c.gb {
		if gv != 0 {
			c.b[i] = sat16(int64(c.b[i]) - sr.Round(gv*lrFixed, bShift))
		}
		c.gb[i] = 0
	}
}

func (c *tConv) gradMaxAbs() float64 {
	return maxAbsScaled(c.gw, c.gFrac+c.aFrac, maxAbsScaled(c.gb, c.gFrac, 0))
}

func (c *tConv) scaleGrads(sFixed int64) {
	scaleInts(c.gw, sFixed)
	scaleInts(c.gb, sFixed)
}

// tDense is the fixed-point trainable fully-connected layer. Its forward
// pass runs on the int16 GEMM kernels: one MatVec16 (wrap-around int32
// accumulation, AVX2 VPMADDWD on amd64) and a single narrow per output.
type tDense struct {
	layerName           string
	in, out             int
	w, b                []int16
	gw, gb              []int64
	aFrac, wFrac, gFrac uint
	x                   []int16
	acc                 []int32
	outW                []int16
	gin                 []int64
	ginW                []int16
}

func (d *tDense) name() string      { return d.layerName }
func (d *tDense) weightBits() int64 { return int64(len(d.w)+len(d.b)) * 16 }

func (d *tDense) forward(in []int16, shape [3]int) ([]int16, [3]int) {
	if len(in) != d.in {
		panic(fmt.Sprintf("qnn: %s expects %d inputs, got %d", d.layerName, d.in, len(in)))
	}
	d.x = in
	if cap(d.acc) < d.out {
		d.acc = make([]int32, d.out)
		d.outW = make([]int16, d.out)
	}
	d.acc, d.outW = d.acc[:d.out], d.outW[:d.out]
	tensor.MatVec16(d.acc, d.w, in)
	for j, a := range d.acc {
		d.outW[j] = narrow64(int64(a)+int64(d.b[j])<<d.aFrac, d.wFrac)
	}
	return d.outW, [3]int{d.out, 1, 1}
}

func (d *tDense) backward(g []int16, needInput bool) []int16 {
	if needInput {
		if cap(d.gin) < d.in {
			d.gin = make([]int64, d.in)
			d.ginW = make([]int16, d.in)
		}
		d.gin, d.ginW = d.gin[:d.in], d.ginW[:d.in]
		for i := range d.gin {
			d.gin[i] = 0
		}
	}
	for j := 0; j < d.out; j++ {
		gv := int64(g[j])
		if gv == 0 {
			continue
		}
		d.gb[j] += gv
		wrow := d.w[j*d.in : (j+1)*d.in]
		grow := d.gw[j*d.in : (j+1)*d.in]
		for i, xv := range d.x {
			grow[i] += gv * int64(xv)
			if needInput {
				d.gin[i] += gv * int64(wrow[i])
			}
		}
	}
	if !needInput {
		return nil
	}
	for i, v := range d.gin {
		d.ginW[i] = narrow64(v, d.wFrac)
	}
	return d.ginW
}

func (d *tDense) update(lrFixed int64, lrFrac uint, sr *fixed.SR) {
	wShift := d.gFrac + d.aFrac + lrFrac - d.wFrac
	for i, gv := range d.gw {
		if gv != 0 {
			d.w[i] = sat16(int64(d.w[i]) - sr.Round(gv*lrFixed, wShift))
		}
		d.gw[i] = 0
	}
	bShift := d.gFrac + lrFrac - d.wFrac
	for i, gv := range d.gb {
		if gv != 0 {
			d.b[i] = sat16(int64(d.b[i]) - sr.Round(gv*lrFixed, bShift))
		}
		d.gb[i] = 0
	}
}

func (d *tDense) gradMaxAbs() float64 {
	return maxAbsScaled(d.gw, d.gFrac+d.aFrac, maxAbsScaled(d.gb, d.gFrac, 0))
}

func (d *tDense) scaleGrads(sFixed int64) {
	scaleInts(d.gw, sFixed)
	scaleInts(d.gb, sFixed)
}

// tReLU is the integer rectifier; backward masks by the cached input sign.
type tReLU struct {
	layerName string
	in        []int16
	out       []int16
}

func (r *tReLU) name() string      { return r.layerName }
func (r *tReLU) weightBits() int64 { return 0 }

func (r *tReLU) forward(in []int16, shape [3]int) ([]int16, [3]int) {
	r.in = in
	if cap(r.out) < len(in) {
		r.out = make([]int16, len(in))
	}
	r.out = r.out[:len(in)]
	for i, v := range in {
		if v > 0 {
			r.out[i] = v
		} else {
			r.out[i] = 0
		}
	}
	return r.out, shape
}

func (r *tReLU) backward(g []int16, needInput bool) []int16 {
	if !needInput {
		return nil
	}
	for i := range g {
		if r.in[i] <= 0 {
			g[i] = 0
		}
	}
	return g
}

func (r *tReLU) update(int64, uint, *fixed.SR) {}
func (r *tReLU) gradMaxAbs() float64           { return 0 }
func (r *tReLU) scaleGrads(int64)              {}

// tPool is integer max pooling; backward routes gradients to the cached
// argmax positions (summed in 32-bit where windows overlap, one narrow).
type tPool struct {
	layerName string
	k, stride int
	arg       []int32
	inLen     int
	shape     [3]int
	out       []int16
	gin32     []int32
	ginW      []int16
}

func (m *tPool) name() string      { return m.layerName }
func (m *tPool) weightBits() int64 { return 0 }

func (m *tPool) forward(in []int16, shape [3]int) ([]int16, [3]int) {
	c, h, w := shape[0], shape[1], shape[2]
	oh := (h-m.k)/m.stride + 1
	ow := (w-m.k)/m.stride + 1
	m.inLen, m.shape = len(in), shape
	if cap(m.out) < c*oh*ow {
		m.out = make([]int16, c*oh*ow)
		m.arg = make([]int32, c*oh*ow)
	}
	m.out, m.arg = m.out[:c*oh*ow], m.arg[:c*oh*ow]
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				bi := base + oy*m.stride*w + ox*m.stride
				best, bestIdx := in[bi], int32(bi)
				for ky := 0; ky < m.k; ky++ {
					for kx := 0; kx < m.k; kx++ {
						idx := base + (oy*m.stride+ky)*w + ox*m.stride + kx
						if in[idx] > best {
							best, bestIdx = in[idx], int32(idx)
						}
					}
				}
				o := ch*oh*ow + oy*ow + ox
				m.out[o], m.arg[o] = best, bestIdx
			}
		}
	}
	return m.out, [3]int{c, oh, ow}
}

func (m *tPool) backward(g []int16, needInput bool) []int16 {
	if !needInput {
		return nil
	}
	if cap(m.gin32) < m.inLen {
		m.gin32 = make([]int32, m.inLen)
		m.ginW = make([]int16, m.inLen)
	}
	m.gin32, m.ginW = m.gin32[:m.inLen], m.ginW[:m.inLen]
	for i := range m.gin32 {
		m.gin32[i] = 0
	}
	for o, idx := range m.arg {
		m.gin32[idx] += int32(g[o])
	}
	for i, v := range m.gin32 {
		m.ginW[i] = sat16(int64(v))
	}
	return m.ginW
}

func (m *tPool) update(int64, uint, *fixed.SR) {}
func (m *tPool) gradMaxAbs() float64           { return 0 }
func (m *tPool) scaleGrads(int64)              {}

// tFlatten is a shape change only.
type tFlatten struct{ layerName string }

func (f *tFlatten) name() string      { return f.layerName }
func (f *tFlatten) weightBits() int64 { return 0 }
func (f *tFlatten) forward(in []int16, shape [3]int) ([]int16, [3]int) {
	return in, [3]int{len(in), 1, 1}
}
func (f *tFlatten) backward(g []int16, needInput bool) []int16 {
	if !needInput {
		return nil
	}
	return g
}
func (f *tFlatten) update(int64, uint, *fixed.SR) {}
func (f *tFlatten) gradMaxAbs() float64           { return 0 }
func (f *tFlatten) scaleGrads(int64)              {}

func maxAbsScaled(vs []int64, frac uint, cur float64) float64 {
	var m int64
	for _, v := range vs {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	if f := float64(m) / float64(int64(1)<<frac); f > cur {
		return f
	}
	return cur
}

// scaleInts multiplies every value by sFixed/2^15, truncating — the
// pre-rounding clip step, before stochastic rounding sees the gradients.
func scaleInts(vs []int64, sFixed int64) {
	for i, v := range vs {
		vs[i] = v * sFixed >> 15
	}
}

// TrainNetwork is a compiled fixed-point *trainable* network: the
// counterpart of Network whose weights are mutable integer words updated in
// place by the quantized TD step.
type TrainNetwork struct {
	layers    []tLayer
	trainFrom int
	opts      TrainOptions
	sr        *fixed.SR
	qin       []int16
	gq        []int16
	outF      []float32
}

// CompileTrainable converts a float network into the fixed-point training
// engine, quantizing current weights and inheriting the network's training
// boundary (SetConfig topology): frozen layers run forward only and are
// never updated. Supported layers match Compile (LRN rejected).
func CompileTrainable(src *nn.Network, opts TrainOptions) (*TrainNetwork, error) {
	opts.setDefaults()
	tn := &TrainNetwork{
		opts:      opts,
		trainFrom: src.TrainFrom(),
		sr:        fixed.NewSR(opts.Seed),
	}
	aFrac, wFrac, gFrac := opts.ActFmt.Frac, opts.WeightFmt.Frac, opts.GradFmt.Frac
	for _, l := range src.Layers {
		switch t := l.(type) {
		case *nn.Conv2D:
			if t.KH != t.KW {
				return nil, fmt.Errorf("qnn: %s has non-square kernel %dx%d", t.LayerName, t.KH, t.KW)
			}
			tn.layers = append(tn.layers, &tConv{
				layerName: t.LayerName,
				inC:       t.InC, outC: t.OutC,
				k: t.KH, stride: t.Stride, pad: t.Pad,
				w:     quantize16(t.Weight.W.Data(), opts.WeightFmt),
				b:     quantize16(t.Bias.W.Data(), opts.WeightFmt),
				gw:    make([]int64, t.Weight.W.Len()),
				gb:    make([]int64, t.Bias.W.Len()),
				aFrac: aFrac, wFrac: wFrac, gFrac: gFrac,
			})
		case *nn.Dense:
			tn.layers = append(tn.layers, &tDense{
				layerName: t.LayerName,
				in:        t.In, out: t.Out,
				w:     quantize16(t.Weight.W.Data(), opts.WeightFmt),
				b:     quantize16(t.Bias.W.Data(), opts.WeightFmt),
				gw:    make([]int64, t.Weight.W.Len()),
				gb:    make([]int64, t.Bias.W.Len()),
				aFrac: aFrac, wFrac: wFrac, gFrac: gFrac,
			})
		case *nn.ReLU:
			tn.layers = append(tn.layers, &tReLU{layerName: t.LayerName})
		case *nn.MaxPool:
			tn.layers = append(tn.layers, &tPool{layerName: t.LayerName, k: t.K, stride: t.Stride})
		case *nn.Flatten:
			tn.layers = append(tn.layers, &tFlatten{layerName: t.LayerName})
		case *nn.LRN:
			return nil, fmt.Errorf("qnn: %s: LRN is not supported by the integer engine", t.LayerName)
		default:
			return nil, fmt.Errorf("qnn: unsupported layer type %T", l)
		}
	}
	return tn, nil
}

func quantize16(xs []float32, f fixed.Format) []int16 {
	out := make([]int16, len(xs))
	for i, x := range xs {
		out[i] = int16(f.FromFloat(float64(x)))
	}
	return out
}

// Forward quantizes a float CHW observation, runs the integer pipeline
// caching per-layer state for Backward, and returns the dequantized
// Q-values. The returned slice is reused by the next call.
func (tn *TrainNetwork) Forward(data []float32, shape [3]int) []float32 {
	if cap(tn.qin) < len(data) {
		tn.qin = make([]int16, len(data))
	}
	tn.qin = tn.qin[:len(data)]
	for i, v := range data {
		tn.qin[i] = int16(tn.opts.ActFmt.FromFloat(float64(v)))
	}
	x, sh := tn.qin, shape
	for _, l := range tn.layers {
		x, sh = l.forward(x, sh)
	}
	if cap(tn.outF) < len(x) {
		tn.outF = make([]float32, len(x))
	}
	tn.outF = tn.outF[:len(x)]
	for i, w := range x {
		tn.outF[i] = float32(tn.opts.ActFmt.ToFloat(fixed.Word(w)))
	}
	return tn.outF
}

// Backward quantizes the float output gradient *stochastically* — so TD
// errors below the gradient format's half-LSB still inject signal in
// expectation — and backpropagates down to the training boundary,
// accumulating the integer gradient scratchpads. Must follow a Forward call
// on the same sample.
func (tn *TrainNetwork) Backward(gradF []float32) {
	if cap(tn.gq) < len(gradF) {
		tn.gq = make([]int16, len(gradF))
	}
	g := tn.gq[:len(gradF)]
	for i, v := range gradF {
		if v != 0 {
			g[i] = int16(tn.opts.GradFmt.FromFloatStochastic(float64(v), tn.sr))
		} else {
			g[i] = 0
		}
	}
	for i := len(tn.layers) - 1; i >= tn.trainFrom; i-- {
		g = tn.layers[i].backward(g, i > tn.trainFrom)
	}
}

// Update clips the accumulated gradients to the given L-infinity limit
// (clip <= 0 disables), applies one stochastically-rounded SGD step
// w -= lr/batch · g to every trainable layer, and clears the scratchpads.
func (tn *TrainNetwork) Update(lr float64, batch int, clip float64) {
	if batch <= 0 {
		panic("qnn: Update with non-positive batch size")
	}
	if clip > 0 {
		var m float64
		for i := tn.trainFrom; i < len(tn.layers); i++ {
			if v := tn.layers[i].gradMaxAbs(); v > m {
				m = v
			}
		}
		if m > clip {
			sFixed := int64(clip / m * (1 << 15))
			for i := tn.trainFrom; i < len(tn.layers); i++ {
				tn.layers[i].scaleGrads(sFixed)
			}
		}
	}
	lrFixed := int64(lr/float64(batch)*float64(int64(1)<<tn.opts.LRFrac) + 0.5)
	for i := tn.trainFrom; i < len(tn.layers); i++ {
		tn.layers[i].update(lrFixed, tn.opts.LRFrac, tn.sr)
	}
}

// OutDim returns the network's output width (the action count): the last
// Dense layer's fan-out.
func (tn *TrainNetwork) OutDim() int {
	for i := len(tn.layers) - 1; i >= 0; i-- {
		if d, ok := tn.layers[i].(*tDense); ok {
			return d.out
		}
	}
	return 0
}

// WeightBits is the full weight-store footprint in bits; one forward pass
// streams this many bits from the stack.
func (tn *TrainNetwork) WeightBits() int64 {
	var total int64
	for _, l := range tn.layers {
		total += l.weightBits()
	}
	return total
}

// TrainableWeightBits is the footprint of the layers above the training
// boundary — the bits rewritten by every Update and re-read by every
// Backward.
func (tn *TrainNetwork) TrainableWeightBits() int64 {
	var total int64
	for i := tn.trainFrom; i < len(tn.layers); i++ {
		total += tn.layers[i].weightBits()
	}
	return total
}

// layerWeights returns the mutable weight/bias words of a layer (nil for
// stateless layers).
func layerWeights(l tLayer) (w, b []int16) {
	switch t := l.(type) {
	case *tConv:
		return t.w, t.b
	case *tDense:
		return t.w, t.b
	}
	return nil, nil
}

// CopyWeightsFrom copies every weight word from an identically-compiled
// network — the target-sync primitive.
func (tn *TrainNetwork) CopyWeightsFrom(src *TrainNetwork) {
	if len(tn.layers) != len(src.layers) {
		panic("qnn: CopyWeightsFrom across different architectures")
	}
	for i, l := range tn.layers {
		w, b := layerWeights(l)
		sw, sb := layerWeights(src.layers[i])
		copy(w, sw)
		copy(b, sb)
	}
}

// WriteBack dequantizes the trainable layers' weights into the matching
// float network, so snapshots, policy publishes and float-side evaluation
// all see what the integer engine learned. Frozen layers are left alone —
// they still hold the transferred float weights at full precision.
func (tn *TrainNetwork) WriteBack(dst *nn.Network) error {
	if len(dst.Layers) != len(tn.layers) {
		return fmt.Errorf("qnn: WriteBack across different architectures (%d vs %d layers)", len(dst.Layers), len(tn.layers))
	}
	for i := tn.trainFrom; i < len(tn.layers); i++ {
		w, b := layerWeights(tn.layers[i])
		if w == nil {
			continue
		}
		var pw, pb []float32
		switch t := dst.Layers[i].(type) {
		case *nn.Conv2D:
			pw, pb = t.Weight.W.Data(), t.Bias.W.Data()
		case *nn.Dense:
			pw, pb = t.Weight.W.Data(), t.Bias.W.Data()
		default:
			return fmt.Errorf("qnn: WriteBack layer %d type mismatch (%T)", i, dst.Layers[i])
		}
		if len(pw) != len(w) || len(pb) != len(b) {
			return fmt.Errorf("qnn: WriteBack layer %d size mismatch", i)
		}
		dequantize16(pw, w, tn.opts.WeightFmt)
		dequantize16(pb, b, tn.opts.WeightFmt)
	}
	return nil
}

func dequantize16(dst []float32, src []int16, f fixed.Format) {
	for i, v := range src {
		dst[i] = float32(f.ToFloat(fixed.Word(v)))
	}
}

// Clone deep-copies the network's weights into a fresh instance sharing no
// state — the bootstrap target construction. Gradient scratchpads and
// caches start empty; the clone gets its own rounding stream.
func (tn *TrainNetwork) Clone() *TrainNetwork {
	out := &TrainNetwork{
		opts:      tn.opts,
		trainFrom: tn.trainFrom,
		sr:        fixed.NewSR(tn.opts.Seed + 0x5DEECE66D),
	}
	for _, l := range tn.layers {
		switch t := l.(type) {
		case *tConv:
			out.layers = append(out.layers, &tConv{
				layerName: t.layerName,
				inC:       t.inC, outC: t.outC,
				k: t.k, stride: t.stride, pad: t.pad,
				w:     append([]int16(nil), t.w...),
				b:     append([]int16(nil), t.b...),
				gw:    make([]int64, len(t.gw)),
				gb:    make([]int64, len(t.gb)),
				aFrac: t.aFrac, wFrac: t.wFrac, gFrac: t.gFrac,
			})
		case *tDense:
			out.layers = append(out.layers, &tDense{
				layerName: t.layerName,
				in:        t.in, out: t.out,
				w:     append([]int16(nil), t.w...),
				b:     append([]int16(nil), t.b...),
				gw:    make([]int64, len(t.gw)),
				gb:    make([]int64, len(t.gb)),
				aFrac: t.aFrac, wFrac: t.wFrac, gFrac: t.gFrac,
			})
		case *tReLU:
			out.layers = append(out.layers, &tReLU{layerName: t.layerName})
		case *tPool:
			out.layers = append(out.layers, &tPool{layerName: t.layerName, k: t.k, stride: t.stride})
		case *tFlatten:
			out.layers = append(out.layers, &tFlatten{layerName: t.layerName})
		}
	}
	return out
}
