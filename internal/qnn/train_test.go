package qnn

import (
	"math"
	"math/rand"
	"testing"

	"dronerl/internal/nn"
	"dronerl/internal/tensor"
)

// tinyNet is a small trainable stack for fast regression tests: the input is
// a 1x2x2 "image" flattened into two dense layers.
func tinyNet(seed int64) *nn.Network {
	net := nn.NewNetwork(
		nn.NewFlatten("FLAT"),
		nn.NewDense("FC1", 4, 8),
		nn.NewReLU("RELU1"),
		nn.NewDense("FC2", 8, 2),
	)
	net.Init(rand.New(rand.NewSource(seed)))
	return net
}

func TestCompileTrainableRejectsLRN(t *testing.T) {
	if _, err := CompileTrainable(nn.NewNetwork(nn.NewLRN("norm")), TrainOptions{}); err == nil {
		t.Fatal("expected LRN rejection")
	}
}

// TestTrainNetworkForwardCloseToFloat bounds the quantization error of the
// training engine's forward pass against the float reference on the tiny
// stack: with Q7.8 activations and Q2.13 weights the output should sit
// within a few activation LSBs of the float value.
func TestTrainNetworkForwardCloseToFloat(t *testing.T) {
	net := tinyNet(3)
	tn, err := CompileTrainable(net, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 16; trial++ {
		in := make([]float32, 4)
		for i := range in {
			in[i] = rng.Float32()
		}
		q := tn.Forward(in, [3]int{1, 2, 2})
		x := tensor.New(1, 2, 2)
		copy(x.Data(), in)
		ref := net.Forward(x).Data()
		for i := range ref {
			if d := math.Abs(float64(q[i] - ref[i])); d > 0.05 {
				t.Fatalf("trial %d output %d: quant %v vs float %v (|d|=%v)", trial, i, q[i], ref[i], d)
			}
		}
	}
}

// TestTrainNetworkRegression drives the integer engine's full
// forward/backward/update loop on a fixed regression target and requires the
// squared error to collapse: the engine must be able to learn, not merely
// run.
func TestTrainNetworkRegression(t *testing.T) {
	tn, err := CompileTrainable(tinyNet(5), TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in := []float32{0.3, -0.4, 0.9, 0.1}
	target := []float32{0.8, -0.5}
	loss := func() float64 {
		q := tn.Forward(in, [3]int{1, 2, 2})
		var l float64
		for i, v := range q {
			d := float64(v - target[i])
			l += d * d
		}
		return l
	}
	initial := loss()
	grad := make([]float32, 2)
	for step := 0; step < 400; step++ {
		q := tn.Forward(in, [3]int{1, 2, 2})
		for i := range grad {
			grad[i] = q[i] - target[i]
		}
		tn.Backward(grad)
		tn.Update(0.05, 1, 1)
	}
	final := loss()
	if final > initial/10 || final > 0.01 {
		t.Fatalf("regression did not converge: initial %v, final %v", initial, final)
	}
}

// TestTrainNetworkBitReproducible asserts the fixed-seed contract: two
// engines compiled from the same float network with the same TrainOptions
// produce bit-identical weight words after an identical training schedule.
func TestTrainNetworkBitReproducible(t *testing.T) {
	run := func() *TrainNetwork {
		tn, err := CompileTrainable(tinyNet(9), TrainOptions{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		in := make([]float32, 4)
		grad := make([]float32, 2)
		for step := 0; step < 50; step++ {
			for i := range in {
				in[i] = rng.Float32()*2 - 1
			}
			q := tn.Forward(in, [3]int{1, 2, 2})
			for i := range grad {
				grad[i] = q[i] - 0.5
			}
			tn.Backward(grad)
			tn.Update(0.01, 1, 1)
		}
		return tn
	}
	a, b := run(), run()
	for i := range a.layers {
		aw, ab := layerWeights(a.layers[i])
		bw, bb := layerWeights(b.layers[i])
		for j := range aw {
			if aw[j] != bw[j] {
				t.Fatalf("layer %d weight %d: %d vs %d", i, j, aw[j], bw[j])
			}
		}
		for j := range ab {
			if ab[j] != bb[j] {
				t.Fatalf("layer %d bias %d: %d vs %d", i, j, ab[j], bb[j])
			}
		}
	}
}

// TestTrainNetworkFrozenPrefix compiles NavNet under the L2 transfer
// topology and asserts the boundary contract: updates leave every frozen
// layer's integer words untouched, gradients still reach the trainable tail,
// and WriteBack leaves the frozen float weights bit-identical.
func TestTrainNetworkFrozenPrefix(t *testing.T) {
	net := trainedNavNet(13)
	net.SetConfig(nn.L2)
	tn, err := CompileTrainable(net, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tn.trainFrom != net.TrainFrom() {
		t.Fatalf("trainFrom %d, want %d", tn.trainFrom, net.TrainFrom())
	}
	frozenBefore := make([][]int16, tn.trainFrom)
	for i := 0; i < tn.trainFrom; i++ {
		if w, _ := layerWeights(tn.layers[i]); w != nil {
			frozenBefore[i] = append([]int16(nil), w...)
		}
	}
	floatFrozen := make([][]float32, tn.trainFrom)
	for i := 0; i < tn.trainFrom; i++ {
		if c, ok := net.Layers[i].(*nn.Conv2D); ok {
			floatFrozen[i] = append([]float32(nil), c.Weight.W.Data()...)
		}
	}
	lastW, _ := layerWeights(tn.layers[len(tn.layers)-1])
	lastBefore := append([]int16(nil), lastW...)

	in := depthImage(17).Data()
	grad := make([]float32, nn.NavNetActions)
	for step := 0; step < 8; step++ {
		q := tn.Forward(in, [3]int{1, nn.NavNetInput, nn.NavNetInput})
		for i := range grad {
			grad[i] = q[i] - 0.25
		}
		tn.Backward(grad)
		tn.Update(0.05, 1, 1)
	}
	for i, before := range frozenBefore {
		if before == nil {
			continue
		}
		w, _ := layerWeights(tn.layers[i])
		for j := range before {
			if w[j] != before[j] {
				t.Fatalf("frozen layer %d weight %d changed", i, j)
			}
		}
	}
	changed := false
	for j := range lastBefore {
		if lastW[j] != lastBefore[j] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("trainable tail weights did not change")
	}
	if err := tn.WriteBack(net); err != nil {
		t.Fatal(err)
	}
	for i, before := range floatFrozen {
		if before == nil {
			continue
		}
		c := net.Layers[i].(*nn.Conv2D)
		for j := range before {
			if c.Weight.W.Data()[j] != before[j] {
				t.Fatalf("WriteBack touched frozen float layer %d", i)
			}
		}
	}
}

// TestTrainBackendTDStep drives the nn.TrainableBackend implementation with
// a synthetic TD minibatch and checks the observable contract: a finite
// batch-mean TD error, STT-MRAM energy/latency charged for the step, and the
// float mirror updated in place.
func TestTrainBackendTDStep(t *testing.T) {
	net := trainedNavNet(19)
	b, err := NewTrainBackend(net, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const batch, chw = 3, nn.NavNetInput * nn.NavNetInput
	states := tensor.New(batch, 1, nn.NavNetInput, nn.NavNetInput)
	nexts := tensor.New(batch, 1, nn.NavNetInput, nn.NavNetInput)
	rng := rand.New(rand.NewSource(23))
	for i := range states.Data() {
		states.Data()[i] = rng.Float32()
		nexts.Data()[i] = rng.Float32()
	}
	// One terminal row: its next-state must contribute no bootstrap.
	for j := 2 * chw; j < 3*chw; j++ {
		nexts.Data()[j] = 0
	}
	fcBefore := append([]float32(nil), net.Layers[len(net.Layers)-1].(*nn.Dense).Weight.W.Data()...)
	mse := b.Train(nn.TrainBatch{
		States:  states,
		Nexts:   nexts,
		Actions: []int{0, 2, 1},
		Rewards: []float64{0.1, -0.2, 1},
		Done:    []bool{false, false, true},
		Gamma:   0.95,
		LR:      0.01,
	})
	if mse < 0 || math.IsNaN(mse) {
		t.Fatalf("bad mse %v", mse)
	}
	cost := b.Cost()
	if cost.EnergyMJ <= 0 || cost.LatencyMS <= 0 {
		t.Fatalf("training charged no energy: %+v", cost)
	}
	if b.Steps() != 1 {
		t.Fatalf("steps %d, want 1", b.Steps())
	}
	fcAfter := net.Layers[len(net.Layers)-1].(*nn.Dense).Weight.W.Data()
	changed := false
	for i := range fcBefore {
		if fcAfter[i] != fcBefore[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("float mirror not updated by Train")
	}

	// SyncTarget charges a full-store write on top.
	before := b.Cost().EnergyMJ
	b.SyncTarget()
	if b.Cost().EnergyMJ <= before {
		t.Fatal("SyncTarget charged no energy")
	}
}

// TestTrainBackendRegistered asserts the registry wiring end to end.
func TestTrainBackendRegistered(t *testing.T) {
	if !nn.HasBackend("quant-train") {
		t.Fatal("quant-train not registered")
	}
	net := trainedNavNet(29)
	bk, err := nn.NewBackendFor("quant-train", net, nn.NavNetSpec(), nn.E2E)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := bk.(nn.TrainableBackend); !ok {
		t.Fatalf("quant-train backend is not trainable (%T)", bk)
	}
	q := bk.Infer(depthImage(31))
	if len(q) != nn.NavNetActions {
		t.Fatalf("Infer returned %d values, want %d", len(q), nn.NavNetActions)
	}
}
