package qnn

import (
	"math"
	"math/rand"
	"testing"

	"dronerl/internal/env"
	"dronerl/internal/fixed"
	"dronerl/internal/nn"
	"dronerl/internal/tensor"
)

func trainedNavNet(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	n := nn.BuildNavNet()
	n.Init(rng)
	return n
}

func depthImage(seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(1, nn.NavNetInput, nn.NavNetInput)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32() // depth images live in [0,1]
	}
	return x
}

func TestCompileNavNet(t *testing.T) {
	q, err := Compile(trainedNavNet(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Layer sequence preserved: conv,relu x2, flatten, (dense,relu) x3, dense.
	if len(q.Layers) != 12 {
		t.Fatalf("%d layers, want 12", len(q.Layers))
	}
	if q.Layers[0].Name() != "CONV1" {
		t.Errorf("first layer %s", q.Layers[0].Name())
	}
}

func TestCompileRejectsLRN(t *testing.T) {
	net := nn.NewNetwork(nn.NewLRN("norm"))
	if _, err := Compile(net, Options{}); err == nil {
		t.Fatal("expected LRN rejection")
	}
}

func TestIntegerForwardMatchesFloat(t *testing.T) {
	net := trainedNavNet(2)
	q, err := Compile(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		x := depthImage(100 + seed)
		ref := net.Forward(x.Clone())
		words, fmtOut := q.Forward(x)
		if len(words) != ref.Len() {
			t.Fatalf("q output %d values, float %d", len(words), ref.Len())
		}
		for i := range words {
			got := fmtOut.ToFloat(words[i])
			want := float64(ref.At(i))
			if math.Abs(got-want) > 0.08 {
				t.Errorf("seed %d Q[%d]: integer %.4f vs float %.4f", seed, i, got, want)
			}
		}
	}
}

func TestIntegerGreedyAgreement(t *testing.T) {
	// Across many random observations the integer engine must pick the
	// same action as the float reference in the overwhelming majority of
	// cases (ties/near-ties may flip).
	net := trainedNavNet(3)
	q, err := Compile(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 60
	for seed := int64(0); seed < int64(total); seed++ {
		x := depthImage(200 + seed)
		if q.Greedy(x) == net.Forward(x.Clone()).ArgMax() {
			agree++
		}
	}
	if agree < total*9/10 {
		t.Errorf("greedy agreement %d/%d, want >= 90%%", agree, total)
	}
}

func TestIntegerForwardDeterministic(t *testing.T) {
	net := trainedNavNet(4)
	q, err := Compile(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := depthImage(5)
	a, _ := q.Forward(x)
	b, _ := q.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("integer inference must be bit-exact deterministic")
		}
	}
}

func TestWeightBitsMatchesModelSize(t *testing.T) {
	net := trainedNavNet(5)
	q, err := Compile(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(nn.NavNetSpec().TotalWeights()) * 16
	if got := q.WeightBits(); got != want {
		t.Errorf("weight traffic %d bits, want %d", got, want)
	}
}

func TestEndToEndFlightWithIntegerPolicy(t *testing.T) {
	// The integer engine must be usable as the deployed flight policy:
	// fly it in a world and check it behaves like the float policy.
	net := trainedNavNet(6)
	q, err := Compile(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := env.IndoorApartment(7)
	agreements, steps := 0, 60
	for i := 0; i < steps; i++ {
		obs := env.DepthImage(w.Depths(), w.Camera.MaxRange)
		qa := q.Greedy(obs)
		fa := net.Forward(obs.Clone()).ArgMax()
		if qa == fa {
			agreements++
		}
		w.Step(env.Action(qa))
	}
	if agreements < steps*8/10 {
		t.Errorf("in-flight agreement %d/%d too low", agreements, steps)
	}
}

func TestSaturationOnExtremeWeights(t *testing.T) {
	// A dense layer with huge weights must saturate, not wrap.
	d := &Dense{
		LayerName: "sat", In: 2, Out: 1,
		W:    fixed.Vec{32767, 32767},
		B:    fixed.Vec{0},
		WFmt: fixed.Format{Frac: 13}, InFmt: fixed.Q78, OutFmt: fixed.Q78,
	}
	in := QTensor{Shape: []int{2}, Data: fixed.Vec{32767, 32767}, Fmt: fixed.Q78}
	out := d.Forward(in)
	if out.Data[0] != 32767 {
		t.Errorf("expected positive saturation, got %d", out.Data[0])
	}
}

func TestMaxPoolInteger(t *testing.T) {
	m := &MaxPool{LayerName: "pool", K: 2, Stride: 2}
	in := QTensor{
		Shape: []int{1, 2, 2},
		Data:  fixed.Vec{1, 5, 3, 2},
		Fmt:   fixed.Q78,
	}
	out := m.Forward(in)
	if len(out.Data) != 1 || out.Data[0] != 5 {
		t.Errorf("maxpool = %v", out.Data)
	}
}

func TestReLUInteger(t *testing.T) {
	r := &ReLU{LayerName: "relu"}
	in := QTensor{Shape: []int{3}, Data: fixed.Vec{-7, 0, 9}, Fmt: fixed.Q78}
	out := r.Forward(in)
	if out.Data[0] != 0 || out.Data[1] != 0 || out.Data[2] != 9 {
		t.Errorf("relu = %v", out.Data)
	}
	// Input must not be mutated.
	if in.Data[0] != -7 {
		t.Error("ReLU mutated its input")
	}
}

func TestConvIntegerKnownValues(t *testing.T) {
	// 1x1x2x2 input, 1 channel, 2x2 kernel of ones, no pad: output =
	// sum of inputs.
	wf := fixed.Format{Frac: 13}
	c := &Conv2D{
		LayerName: "c", InC: 1, OutC: 1, K: 2, Stride: 1, Pad: 0,
		W:    fixed.Vec{wf.One(), wf.One(), wf.One(), wf.One()},
		B:    fixed.Vec{0},
		WFmt: wf, InFmt: fixed.Q78, OutFmt: fixed.Q78,
	}
	in := QTensor{Shape: []int{1, 2, 2}, Fmt: fixed.Q78,
		Data: fixed.Vec{fixed.Q78.FromFloat(0.5), fixed.Q78.FromFloat(0.25),
			fixed.Q78.FromFloat(0.125), fixed.Q78.FromFloat(0.125)}}
	out := c.Forward(in)
	got := fixed.Q78.ToFloat(out.Data[0])
	if math.Abs(got-1.0) > 2*fixed.Q78.Eps() {
		t.Errorf("conv sum = %v, want 1.0", got)
	}
}
