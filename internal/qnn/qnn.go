// Package qnn is the deployable integer inference engine: the forward path
// of a trained network executed entirely in the accelerator's 16-bit
// fixed-point arithmetic (internal/fixed) with 32-bit accumulators — the
// numeric behaviour of the PE datapath, bit for bit, rather than a float
// emulation of it.
//
// A float network trained by internal/nn is Compiled once (weights
// quantized into each layer's format) and then evaluated with integer MACs
// only. This is the artifact that would actually be downloaded into the
// STT-MRAM stack: the paper stores "16 bit fixed point" weights (Fig. 4(b))
// and performs inference reads from the stack.
package qnn

import (
	"fmt"

	"dronerl/internal/fixed"
	"dronerl/internal/tensor"
)

// QTensor is an integer tensor with an associated fixed-point format.
type QTensor struct {
	Shape []int
	Data  fixed.Vec
	Fmt   fixed.Format
}

// Len returns the element count.
func (q QTensor) Len() int { return len(q.Data) }

// Layer is one integer inference stage.
type Layer interface {
	// Name identifies the layer.
	Name() string
	// Forward consumes and produces format-tagged integer tensors.
	Forward(in QTensor) QTensor
	// WeightBits returns the read traffic this layer generates against
	// the weight store, in bits.
	WeightBits() int64
}

// Conv2D is an integer convolution (CHW, square kernel).
type Conv2D struct {
	LayerName           string
	InC, OutC           int
	K, Stride, Pad      int
	W                   fixed.Vec // (outC, inC*k*k) row-major
	B                   fixed.Vec
	WFmt, InFmt, OutFmt fixed.Format

	// Batched-path caches (batch.go): the weight image re-typed for the
	// int16 GEMM kernel, the bias rescaled into OutFmt, and the reusable
	// output-shape header.
	wGemm  []int16
	bOut   fixed.Vec
	bShape []int
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.LayerName }

// WeightBits implements Layer.
func (c *Conv2D) WeightBits() int64 { return int64(len(c.W)+len(c.B)) * 16 }

// Forward implements Layer. Products accumulate in 32-bit (as in the PE
// MAC units) and are narrowed once per output pixel.
func (c *Conv2D) Forward(in QTensor) QTensor {
	h, w := in.Shape[1], in.Shape[2]
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	out := QTensor{Shape: []int{c.OutC, oh, ow}, Data: make(fixed.Vec, c.OutC*oh*ow), Fmt: c.OutFmt}
	colw := c.InC * c.K * c.K
	for oc := 0; oc < c.OutC; oc++ {
		wrow := c.W[oc*colw : (oc+1)*colw]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc fixed.Acc
				p := 0
				for ic := 0; ic < c.InC; ic++ {
					base := ic * h * w
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride - c.Pad + ky
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride - c.Pad + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								acc = fixed.MAC(acc, in.Data[base+iy*w+ix], wrow[p])
							}
							p++
						}
					}
				}
				word := narrowMixed(acc, c.InFmt, c.WFmt, c.OutFmt)
				word = fixed.SatAdd(word, rescale(c.B[oc], c.WFmt, c.OutFmt))
				out.Data[oc*oh*ow+oy*ow+ox] = word
			}
		}
	}
	return out
}

// Dense is an integer fully-connected layer.
type Dense struct {
	LayerName           string
	In, Out             int
	W                   fixed.Vec // (out, in) row-major
	B                   fixed.Vec
	WFmt, InFmt, OutFmt fixed.Format

	// Batched-path caches, as on Conv2D.
	wGemm  []int16
	bOut   fixed.Vec
	bShape []int
}

// Name implements Layer.
func (d *Dense) Name() string { return d.LayerName }

// WeightBits implements Layer.
func (d *Dense) WeightBits() int64 { return int64(len(d.W)+len(d.B)) * 16 }

// Forward implements Layer.
func (d *Dense) Forward(in QTensor) QTensor {
	if in.Len() != d.In {
		panic(fmt.Sprintf("qnn: %s expects %d inputs, got %d", d.LayerName, d.In, in.Len()))
	}
	out := QTensor{Shape: []int{d.Out}, Data: make(fixed.Vec, d.Out), Fmt: d.OutFmt}
	for j := 0; j < d.Out; j++ {
		row := d.W[j*d.In : (j+1)*d.In]
		acc := fixed.DotAcc(in.Data, row)
		word := narrowMixed(acc, d.InFmt, d.WFmt, d.OutFmt)
		out.Data[j] = fixed.SatAdd(word, rescale(d.B[j], d.WFmt, d.OutFmt))
	}
	return out
}

// ReLU is the integer rectifier (a comparator against zero).
type ReLU struct{ LayerName string }

// Name implements Layer.
func (r *ReLU) Name() string { return r.LayerName }

// WeightBits implements Layer.
func (r *ReLU) WeightBits() int64 { return 0 }

// Forward implements Layer.
func (r *ReLU) Forward(in QTensor) QTensor {
	out := QTensor{Shape: in.Shape, Data: make(fixed.Vec, in.Len()), Fmt: in.Fmt}
	copy(out.Data, in.Data)
	fixed.ReLUVec(out.Data)
	return out
}

// MaxPool is the integer max-pooling layer (comparators only).
type MaxPool struct {
	LayerName string
	K, Stride int

	bShape []int // batched-path output-shape header
}

// Name implements Layer.
func (m *MaxPool) Name() string { return m.LayerName }

// WeightBits implements Layer.
func (m *MaxPool) WeightBits() int64 { return 0 }

// Forward implements Layer.
func (m *MaxPool) Forward(in QTensor) QTensor {
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	oh := (h-m.K)/m.Stride + 1
	ow := (w-m.K)/m.Stride + 1
	out := QTensor{Shape: []int{c, oh, ow}, Data: make(fixed.Vec, c*oh*ow), Fmt: in.Fmt}
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := in.Data[base+oy*m.Stride*w+ox*m.Stride]
				for ky := 0; ky < m.K; ky++ {
					for kx := 0; kx < m.K; kx++ {
						v := in.Data[base+(oy*m.Stride+ky)*w+ox*m.Stride+kx]
						best = fixed.Max2(best, v)
					}
				}
				out.Data[ch*oh*ow+oy*ow+ox] = best
			}
		}
	}
	return out
}

// Flatten reshapes without touching data.
type Flatten struct {
	LayerName string

	bShape []int // batched-path output-shape header
}

// Name implements Layer.
func (f *Flatten) Name() string { return f.LayerName }

// WeightBits implements Layer.
func (f *Flatten) WeightBits() int64 { return 0 }

// Forward implements Layer.
func (f *Flatten) Forward(in QTensor) QTensor {
	return QTensor{Shape: []int{in.Len()}, Data: in.Data, Fmt: in.Fmt}
}

// Network is a compiled integer network.
type Network struct {
	Layers []Layer
	// InFmt is the expected input activation format.
	InFmt fixed.Format

	// ws is the batched path's workspace (batch.go), built on first use.
	ws *batchWorkspace
}

// Forward quantizes a float CHW image into the input format and runs the
// integer pipeline, returning the Q-value words and their format.
func (n *Network) Forward(img *tensor.Tensor) (fixed.Vec, fixed.Format) {
	q := QTensor{Shape: append([]int(nil), img.Shape()...), Data: make(fixed.Vec, img.Len()), Fmt: n.InFmt}
	for i, v := range img.Data() {
		q.Data[i] = n.InFmt.FromFloat(float64(v))
	}
	for _, l := range n.Layers {
		q = l.Forward(q)
	}
	return q.Data, q.Fmt
}

// Greedy returns the argmax action of the integer Q-values.
func (n *Network) Greedy(img *tensor.Tensor) int {
	q, _ := n.Forward(img)
	best := 0
	for i, w := range q {
		if w > q[best] {
			best = i
		}
	}
	return best
}

// WeightBits sums the weight-store read traffic of one inference.
func (n *Network) WeightBits() int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.WeightBits()
	}
	return total
}

// narrowMixed converts an accumulator whose operands had inFmt and wFmt
// fractional bits into outFmt with rounding and saturation.
func narrowMixed(acc fixed.Acc, inFmt, wFmt, outFmt fixed.Format) fixed.Word {
	shift := int(inFmt.Frac+wFmt.Frac) - int(outFmt.Frac)
	v := int64(acc)
	switch {
	case shift > 0:
		half := int64(1) << uint(shift) >> 1
		v = (v + half) >> uint(shift)
	case shift < 0:
		v <<= uint(-shift)
	}
	if v > 32767 {
		v = 32767
	}
	if v < -32768 {
		v = -32768
	}
	return fixed.Word(v)
}

// rescale converts a word from one format to another.
func rescale(w fixed.Word, from, to fixed.Format) fixed.Word {
	return to.FromFloat(from.ToFloat(w))
}
