package qnn

import (
	"fmt"

	"dronerl/internal/mem"
	"dronerl/internal/nn"
	"dronerl/internal/tensor"
)

// TrainBackend is the nn.TrainableBackend over the fixed-point training
// engine: the online and bootstrap-target networks both live as integer
// words in the modeled STT-MRAM stack, and every TD step is executed in the
// accelerator's arithmetic — quantized forward passes for the bootstrap and
// the online Q-values, integer backprop, and a stochastically-rounded
// weight update.
//
// Cost model, all at Table 1 STT-MRAM timing/energy against the backend's
// ledger: every forward pass (online, target bootstrap, and Infer) streams
// the full weight store as reads; every backward pass re-reads the
// trainable layers' weights; every Update writes the trainable weight words
// back; every target sync writes the full target store. The train-side
// tallies are what EXPERIMENTS.md's train-energy-per-step table reports
// against the paper's E2E column.
type TrainBackend struct {
	online *TrainNetwork
	target *TrainNetwork
	// float is the agent's float network, kept mirrored via WriteBack so
	// snapshots/publishes/eval backends see the integer engine's weights.
	float *nn.Network

	mram   *mem.Device
	ledger *mem.EnergyLedger
	cost   nn.BackendCost
	steps  int64
	// gradClip mirrors the float path's default L-infinity clip.
	gradClip float64

	out  []float32
	grad []float32
}

// NewTrainBackend compiles a float network into the fixed-point training
// engine with the given options. The network's current SetConfig topology
// decides the training boundary (frozen prefix).
func NewTrainBackend(src *nn.Network, opts TrainOptions) (*TrainBackend, error) {
	online, err := CompileTrainable(src, opts)
	if err != nil {
		return nil, err
	}
	return &TrainBackend{
		online:   online,
		target:   online.Clone(),
		float:    src,
		mram:     mem.STTMRAM(),
		ledger:   mem.NewCompactLedger(),
		gradClip: 1,
	}, nil
}

// Name implements nn.Backend.
func (b *TrainBackend) Name() string { return "quant-train" }

func obsShape(obs *tensor.Tensor) [3]int {
	sh := obs.Shape()
	if len(sh) != 3 {
		panic(fmt.Sprintf("qnn: TrainBackend expects CHW observations, got %v", sh))
	}
	return [3]int{sh[0], sh[1], sh[2]}
}

// charge records one aggregated access and folds it into the cost tallies.
func (b *TrainBackend) charge(kind mem.AccessKind, bits int64) {
	if bits <= 0 {
		return
	}
	rec := b.ledger.Record(b.mram, kind, bits)
	b.cost.EnergyMJ += rec.PJ / 1e9
	b.cost.LatencyMS += rec.TimeNS / 1e6
}

// Infer implements nn.Backend: one quantized forward pass through the
// online network, charged as a full weight-stream read. The returned slice
// is reused by the next call.
func (b *TrainBackend) Infer(obs *tensor.Tensor) []float32 {
	q := b.online.Forward(obs.Data(), obsShape(obs))
	b.charge(mem.Read, b.online.WeightBits())
	b.cost.Inferences++
	return q
}

// Train implements nn.TrainableBackend: one minibatch TD(0) update run
// sample by sample through the integer engine (the accelerator's serial
// per-image dataflow, Fig. 3(b)) with one stochastically-rounded weight
// update at the end. Returns the batch-mean squared TD error.
func (b *TrainBackend) Train(batch nn.TrainBatch) float64 {
	n := len(batch.Actions)
	if n == 0 {
		return 0
	}
	sh := batch.States.Shape()
	if len(sh) != 4 {
		panic(fmt.Sprintf("qnn: TrainBatch states must be NCHW, got %v", sh))
	}
	shape := [3]int{sh[1], sh[2], sh[3]}
	chw := sh[1] * sh[2] * sh[3]
	sd, nd := batch.States.Data(), batch.Nexts.Data()
	actions := b.online.OutDim()
	if cap(b.grad) < actions {
		b.grad = make([]float32, actions)
	}
	grad := b.grad[:actions]

	full := b.online.WeightBits()
	trainable := b.online.TrainableWeightBits()
	var readBits int64
	var mse float64
	for s := 0; s < n; s++ {
		target := batch.Rewards[s]
		if !batch.Done[s] {
			qn := b.target.Forward(nd[s*chw:(s+1)*chw], shape)
			best := qn[0]
			for _, v := range qn[1:] {
				if v > best {
					best = v
				}
			}
			target += batch.Gamma * float64(best)
			readBits += full
		}
		q := b.online.Forward(sd[s*chw:(s+1)*chw], shape)
		readBits += full
		td := float64(q[batch.Actions[s]]) - target
		mse += td * td
		for i := range grad {
			grad[i] = 0
		}
		grad[batch.Actions[s]] = float32(td)
		b.online.Backward(grad)
		readBits += trainable
	}
	b.charge(mem.Read, readBits)
	b.online.Update(batch.LR, n, b.gradClip)
	// The weight update is the paper's expensive direction: every trainable
	// word rewritten at Table 1 STT-MRAM write cost.
	b.charge(mem.Write, trainable)
	b.steps++
	if err := b.online.WriteBack(b.float); err != nil {
		panic("qnn: TrainBackend write-back failed: " + err.Error())
	}
	return mse / float64(n)
}

// SyncTarget implements nn.TrainableBackend: the online weight words are
// copied into the target store, charged as a full-store write.
func (b *TrainBackend) SyncTarget() {
	b.target.CopyWeightsFrom(b.online)
	b.charge(mem.Write, b.target.WeightBits())
}

// Cost implements nn.CostReporter.
func (b *TrainBackend) Cost() nn.BackendCost { return b.cost }

// Ledger exposes the backend's STT-MRAM traffic ledger (totals only).
func (b *TrainBackend) Ledger() *mem.EnergyLedger { return b.ledger }

// Steps returns the number of completed Train calls (weight updates).
func (b *TrainBackend) Steps() int64 { return b.steps }

// Online exposes the integer training network (tests and reports).
func (b *TrainBackend) Online() *TrainNetwork { return b.online }

func init() {
	if err := nn.RegisterBackend("quant-train", func(net *nn.Network, _ nn.ArchSpec, _ nn.Config) (nn.Backend, error) {
		return NewTrainBackend(net, TrainOptions{})
	}); err != nil {
		panic(err)
	}
}
