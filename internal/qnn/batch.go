package qnn

import (
	"fmt"

	"dronerl/internal/fixed"
	"dronerl/internal/tensor"
)

// This file is the batched integer inference path: every layer processes B
// stacked samples (leading batch dimension, NCHW for spatial tensors) with a
// single int16 GEMM per weighted layer — tensor.MatMul16T, whose AVX2 Dot16
// inner loop is unconditionally asserted bit-identical to the scalar kernel —
// instead of B single-sample passes. All intermediate panels live in a
// grow-only per-network workspace, so after the first batch of a given size
// the pass performs no heap allocation, mirroring the float path's arena
// contract (nn/batch.go) and the accelerator's fixed scratchpad provisioning.
//
// Accumulation contract. The serial path (qnn.go) accumulates with fixed.MAC,
// which saturates the 32-bit accumulator at every step; the GEMM kernels
// accumulate with two's-complement wrap-around and saturate exactly once at
// the final narrow (the tensor/int16.go contract the quantized training
// engine already relies on). The two agree on every output word whenever no
// intermediate sum leaves the int32 range — guaranteed by the same range
// discipline the training path documents: with Q7.8 activations and Q2.13
// weights under trained-weight magnitudes, reduction rows sit orders of
// magnitude below the overflow horizon. Padding is the other visible
// difference: the serial loop skips out-of-bounds taps while the im2col
// panel materializes them as zero words, which add zero to either kind of
// accumulator. Batched output words are therefore bit-identical to B serial
// Forward calls, pinned (not assumed) by TestQuantInferBatchBitIdentical
// across every builtin scenario.
//
// A Network's batched path is not safe for concurrent use — the workspace is
// shared across calls. Give each goroutine its own compiled Network, exactly
// as the serving workers and swarm fleets do.

// batchWorkspace is the grow-only slot pool behind the batched path: one
// int16 panel, one int32 accumulator panel and one word panel per layer
// index, plus the quantized input stack. Slices are resliced, never shrunk,
// so steady-state batches of any size allocate nothing.
type batchWorkspace struct {
	i16   [][]int16
	i32   [][]int32
	words []fixed.Vec
	in    fixed.Vec
}

func (ws *batchWorkspace) get16(slot, n int) []int16 {
	for slot >= len(ws.i16) {
		ws.i16 = append(ws.i16, nil)
	}
	if cap(ws.i16[slot]) < n {
		ws.i16[slot] = make([]int16, n)
	}
	return ws.i16[slot][:n]
}

func (ws *batchWorkspace) get32(slot, n int) []int32 {
	for slot >= len(ws.i32) {
		ws.i32 = append(ws.i32, nil)
	}
	if cap(ws.i32[slot]) < n {
		ws.i32[slot] = make([]int32, n)
	}
	return ws.i32[slot][:n]
}

func (ws *batchWorkspace) getWords(slot, n int) fixed.Vec {
	for slot >= len(ws.words) {
		ws.words = append(ws.words, nil)
	}
	if cap(ws.words[slot]) < n {
		ws.words[slot] = make(fixed.Vec, n)
	}
	return ws.words[slot][:n]
}

// batchLayer is the batched hook every builtin Layer implements: forward B
// stacked samples (in.Shape[0] is the batch dimension) through the layer's
// one-GEMM-per-batch kernel, staging through the workspace's slot for this
// layer index. The returned tensor's data is owned by the workspace (or, for
// view layers, aliases the input) and stays valid until the layer's next
// batched call.
type batchLayer interface {
	forwardBatch(in QTensor, ws *batchWorkspace, slot int) QTensor
}

// ensureGEMM builds the conv layer's GEMM-side weight image — the quantized
// words re-typed for the int16 kernel — and the bias rescaled into the output
// format, computed once: compiled weights are immutable (a policy reload
// compiles a fresh backend).
func (c *Conv2D) ensureGEMM() {
	if c.wGemm != nil {
		return
	}
	c.wGemm = make([]int16, len(c.W))
	for i, w := range c.W {
		c.wGemm[i] = int16(w)
	}
	c.bOut = make(fixed.Vec, len(c.B))
	for i, b := range c.B {
		c.bOut[i] = rescale(b, c.WFmt, c.OutFmt)
	}
}

// forwardBatch implements batchLayer: one im2col expansion over the whole
// batch and one integer GEMM computing all B samples' outputs. The panel is
// patch-major — row s*np+p holds output pixel p of sample s's receptive
// field in the serial loop's (ic, ky, kx) order — so every GEMM element runs
// the exact reduction the serial MAC loop runs, with padding taps as zero
// words.
func (c *Conv2D) forwardBatch(in QTensor, ws *batchWorkspace, slot int) QTensor {
	bsz, h, w := in.Shape[0], in.Shape[2], in.Shape[3]
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	np := oh * ow
	colw := c.InC * c.K * c.K
	c.ensureGEMM()
	panel := ws.get16(slot, bsz*np*colw)
	chw := c.InC * h * w
	for s := 0; s < bsz; s++ {
		src := in.Data[s*chw : (s+1)*chw]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := panel[(s*np+oy*ow+ox)*colw : (s*np+oy*ow+ox+1)*colw]
				p := 0
				for ic := 0; ic < c.InC; ic++ {
					base := ic * h * w
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride - c.Pad + ky
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride - c.Pad + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								row[p] = int16(src[base+iy*w+ix])
							} else {
								row[p] = 0
							}
							p++
						}
					}
				}
			}
		}
	}
	// One GEMM for the whole batch: acc (B*np x OutC) = panel x Wᵀ, then the
	// serial path's single narrow + bias add per output pixel, scattered from
	// patch-major back to batch-major CHW.
	acc := ws.get32(slot, bsz*np*c.OutC)
	tensor.MatMul16T(acc, panel, c.wGemm, bsz*np, colw, c.OutC)
	if len(c.bShape) != 4 {
		c.bShape = make([]int, 4)
	}
	c.bShape[0], c.bShape[1], c.bShape[2], c.bShape[3] = bsz, c.OutC, oh, ow
	out := QTensor{Shape: c.bShape, Data: ws.getWords(slot, bsz*c.OutC*np), Fmt: c.OutFmt}
	for s := 0; s < bsz; s++ {
		for oc := 0; oc < c.OutC; oc++ {
			dst := out.Data[(s*c.OutC+oc)*np : (s*c.OutC+oc+1)*np]
			bias := c.bOut[oc]
			arow := acc[s*np*c.OutC:]
			for p := range dst {
				word := narrowMixed(fixed.Acc(arow[p*c.OutC+oc]), c.InFmt, c.WFmt, c.OutFmt)
				dst[p] = fixed.SatAdd(word, bias)
			}
		}
	}
	return out
}

// ensureGEMM mirrors Conv2D's: d.W is (Out, In) row-major, which is exactly
// the transposed-operand layout MatMul16T wants, so the image is a pure
// element-type copy.
func (d *Dense) ensureGEMM() {
	if d.wGemm != nil {
		return
	}
	d.wGemm = make([]int16, len(d.W))
	for i, w := range d.W {
		d.wGemm[i] = int16(w)
	}
	d.bOut = make(fixed.Vec, len(d.B))
	for i, b := range d.B {
		d.bOut[i] = rescale(b, d.WFmt, d.OutFmt)
	}
}

// forwardBatch implements batchLayer: Y (B x Out) = X x Wᵀ in one integer
// GEMM — the layer's weights stream through the kernel once for the whole
// batch — followed by the serial path's narrow and bias per element.
func (d *Dense) forwardBatch(in QTensor, ws *batchWorkspace, slot int) QTensor {
	bsz := in.Shape[0]
	if in.Len()/bsz != d.In {
		panic(fmt.Sprintf("qnn: %s expects %d inputs per sample, got %d", d.LayerName, d.In, in.Len()/bsz))
	}
	d.ensureGEMM()
	x := ws.get16(slot, bsz*d.In)
	for i, w := range in.Data {
		x[i] = int16(w)
	}
	acc := ws.get32(slot, bsz*d.Out)
	tensor.MatMul16T(acc, x, d.wGemm, bsz, d.In, d.Out)
	if len(d.bShape) != 2 {
		d.bShape = make([]int, 2)
	}
	d.bShape[0], d.bShape[1] = bsz, d.Out
	out := QTensor{Shape: d.bShape, Data: ws.getWords(slot, bsz*d.Out), Fmt: d.OutFmt}
	for s := 0; s < bsz; s++ {
		row := out.Data[s*d.Out : (s+1)*d.Out]
		for j := range row {
			word := narrowMixed(fixed.Acc(acc[s*d.Out+j]), d.InFmt, d.WFmt, d.OutFmt)
			row[j] = fixed.SatAdd(word, d.bOut[j])
		}
	}
	return out
}

// forwardBatch implements batchLayer; the rectifier is elementwise, so the
// batch path is the serial comparator over the stacked words.
func (r *ReLU) forwardBatch(in QTensor, ws *batchWorkspace, slot int) QTensor {
	out := QTensor{Shape: in.Shape, Data: ws.getWords(slot, in.Len()), Fmt: in.Fmt}
	copy(out.Data, in.Data)
	fixed.ReLUVec(out.Data)
	return out
}

// forwardBatch implements batchLayer: the serial comparator loops per sample,
// writing into the layer's workspace slot.
func (m *MaxPool) forwardBatch(in QTensor, ws *batchWorkspace, slot int) QTensor {
	bsz, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh := (h-m.K)/m.Stride + 1
	ow := (w-m.K)/m.Stride + 1
	if len(m.bShape) != 4 {
		m.bShape = make([]int, 4)
	}
	m.bShape[0], m.bShape[1], m.bShape[2], m.bShape[3] = bsz, c, oh, ow
	out := QTensor{Shape: m.bShape, Data: ws.getWords(slot, bsz*c*oh*ow), Fmt: in.Fmt}
	for s := 0; s < bsz; s++ {
		for ch := 0; ch < c; ch++ {
			base := (s*c + ch) * h * w
			obase := (s*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := in.Data[base+oy*m.Stride*w+ox*m.Stride]
					for ky := 0; ky < m.K; ky++ {
						for kx := 0; kx < m.K; kx++ {
							v := in.Data[base+(oy*m.Stride+ky)*w+ox*m.Stride+kx]
							best = fixed.Max2(best, v)
						}
					}
					out.Data[obase+oy*ow+ox] = best
				}
			}
		}
	}
	return out
}

// forwardBatch implements batchLayer: (B, C, H, W) -> (B, C*H*W) as a view;
// batch-major data is already flat per sample.
func (f *Flatten) forwardBatch(in QTensor, ws *batchWorkspace, _ int) QTensor {
	bsz := in.Shape[0]
	if len(f.bShape) != 2 {
		f.bShape = make([]int, 2)
	}
	f.bShape[0], f.bShape[1] = bsz, in.Len()/bsz
	return QTensor{Shape: f.bShape, Data: in.Data, Fmt: in.Fmt}
}

// ForwardBatch quantizes B stacked float observations ((B, C, H, W), the
// float path's ForwardBatch layout) into the input format and runs the
// integer pipeline with one int16 GEMM per weighted layer for the whole
// batch. It returns the B stacked Q-value words row-major and their format;
// both alias the network workspace and stay valid until the next batched
// call. Per-row words are bit-identical to B serial Forward calls (see the
// file comment for the accumulation argument; pinned by test).
func (n *Network) ForwardBatch(batch *tensor.Tensor) (fixed.Vec, fixed.Format) {
	if batch.Rank() != 4 {
		panic(fmt.Sprintf("qnn: ForwardBatch expects a (B, C, H, W) batch, got %v", batch.Shape()))
	}
	if n.ws == nil {
		n.ws = &batchWorkspace{}
	}
	ws := n.ws
	if cap(ws.in) < batch.Len() {
		ws.in = make(fixed.Vec, batch.Len())
	}
	ws.in = ws.in[:batch.Len()]
	for i, v := range batch.Data() {
		ws.in[i] = n.InFmt.FromFloat(float64(v))
	}
	q := QTensor{Shape: batch.Shape(), Data: ws.in, Fmt: n.InFmt}
	for i, l := range n.Layers {
		bl, ok := l.(batchLayer)
		if !ok {
			panic(fmt.Sprintf("qnn: layer %s (%T) has no batched kernel", l.Name(), l))
		}
		q = bl.forwardBatch(q, ws, i)
	}
	return q.Data, q.Fmt
}
