package qnn

import (
	"math/rand"
	"runtime"
	"testing"

	"dronerl/internal/env"
	"dronerl/internal/nn"
	"dronerl/internal/tensor"
)

// Compile-time pin: the quant backend answers the serving batcher's
// coalesced path.
var _ nn.BatchInferrer = (*Backend)(nil)

// scenarioObs flies count random actions in the named catalog world and
// returns the depth observations along the way — realistic inputs for the
// bit-identity sweep, not just uniform noise.
func scenarioObs(t *testing.T, name string, count int, seed int64) []*tensor.Tensor {
	t.Helper()
	sc, ok := env.LookupScenario(name)
	if !ok {
		t.Fatalf("scenario %q vanished from the catalog", name)
	}
	w := sc.Build(seed)
	w.Spawn()
	rng := rand.New(rand.NewSource(seed + 1))
	obs := make([]*tensor.Tensor, 0, count)
	obs = append(obs, env.DepthImage(w.Depths(), w.Camera.MaxRange))
	for len(obs) < count {
		res := w.Step(env.Action(rng.Intn(env.NumActions)))
		obs = append(obs, env.DepthImage(res.Depths, w.Camera.MaxRange))
	}
	return obs
}

// TestQuantInferBatchBitIdentical asserts the batched integer path returns,
// word for word, exactly what the per-sample path returns — on every builtin
// scenario's observations, across batch sizes {1, 8, 32}. This pins the
// wrap-around-GEMM vs saturating-MAC accumulation argument (batch.go) on
// real depth images, and the backend-level float rows with it.
func TestQuantInferBatchBitIdentical(t *testing.T) {
	spec := nn.NavNetSpec()
	net := spec.Build()
	net.Init(rand.New(rand.NewSource(31)))
	b, err := NewBackend(net)
	if err != nil {
		t.Fatal(err)
	}
	qnet := b.net
	actions := spec.FCs[len(spec.FCs)-1].Out
	row := env.ImageSize * env.ImageSize

	for si, name := range env.ScenarioNames() {
		obs := scenarioObs(t, name, 32, int64(100+si))
		for _, bsz := range []int{1, 8, 32} {
			stack := tensor.New(bsz, 1, env.ImageSize, env.ImageSize)
			for s := 0; s < bsz; s++ {
				copy(stack.Data()[s*row:(s+1)*row], obs[s].Data())
			}
			// Snapshot the per-sample answers first: the batched pass reuses
			// workspaces, the serial pass allocates fresh tensors.
			wantWords := make([][]int16, bsz)
			wantQ := make([][]float32, bsz)
			for s := 0; s < bsz; s++ {
				words, _ := qnet.Forward(obs[s])
				wantWords[s] = make([]int16, len(words))
				for i, w := range words {
					wantWords[s][i] = int16(w)
				}
				wantQ[s] = append([]float32(nil), b.Infer(obs[s])...)
			}
			gotWords, _ := qnet.ForwardBatch(stack)
			if len(gotWords) != bsz*actions {
				t.Fatalf("%s batch %d: ForwardBatch returned %d words, want %d",
					name, bsz, len(gotWords), bsz*actions)
			}
			for s := 0; s < bsz; s++ {
				for i := 0; i < actions; i++ {
					if got := int16(gotWords[s*actions+i]); got != wantWords[s][i] {
						t.Fatalf("%s batch %d sample %d: word[%d] = %d, want %d (must be bit-identical)",
							name, bsz, s, i, got, wantWords[s][i])
					}
				}
			}
			gotQ := b.InferBatch(stack)
			for s := 0; s < bsz; s++ {
				for i := 0; i < actions; i++ {
					if gotQ[s*actions+i] != wantQ[s][i] {
						t.Fatalf("%s batch %d sample %d: Q[%d] = %v, want %v (must be bit-identical)",
							name, bsz, s, i, gotQ[s*actions+i], wantQ[s][i])
					}
				}
			}
		}
	}
}

// TestQuantInferBatchLedgerAmortized asserts the batched path's energy
// accounting: one InferBatch call charges exactly one weight stream — every
// layer's weights read from the stack once — no matter how many requests the
// batch carries, while the per-sample path charges one stream per request.
func TestQuantInferBatchLedgerAmortized(t *testing.T) {
	spec := nn.NavNetSpec()
	net := spec.Build()
	net.Init(rand.New(rand.NewSource(41)))
	b, err := NewBackend(net)
	if err != nil {
		t.Fatal(err)
	}
	stream := b.net.WeightBits()
	if stream <= 0 {
		t.Fatal("compiled network reports no weight traffic")
	}

	const bsz = 8
	stack := tensor.New(bsz, 1, env.ImageSize, env.ImageSize)
	stack.RandUniform(rand.New(rand.NewSource(42)), 1)

	b.InferBatch(stack)
	mram := b.Ledger().Total("STT-MRAM")
	if mram.ReadBits != stream {
		t.Errorf("batch of %d read %d bits, want %d (one stream per layer, not one per request)",
			bsz, mram.ReadBits, stream)
	}
	if got := b.Cost().Inferences; got != bsz {
		t.Errorf("batch of %d counted %d inferences", bsz, got)
	}
	batchMJ := b.Cost().EnergyMJ

	// The per-sample path pays bsz streams for the same work.
	for s := 0; s < bsz; s++ {
		obs := tensor.FromSlice(append([]float32(nil), stack.Data()[s*stack.Len()/bsz:(s+1)*stack.Len()/bsz]...),
			1, env.ImageSize, env.ImageSize)
		b.Infer(obs)
	}
	mram = b.Ledger().Total("STT-MRAM")
	if want := (1 + bsz) * stream; mram.ReadBits != want {
		t.Errorf("after %d serial Infers ledger reads %d bits, want %d", bsz, mram.ReadBits, want)
	}
	serialMJ := b.Cost().EnergyMJ - batchMJ
	if batchMJ >= serialMJ {
		t.Errorf("batched energy %v mJ not below serial %v mJ: weight stream is not amortized", batchMJ, serialMJ)
	}
	if mram.WriteBits != 0 {
		t.Errorf("inference wrote %d bits to the stack", mram.WriteBits)
	}
}

// TestQuantForwardBatchZeroAlloc asserts the steady-state allocation
// contract of the batched integer pass: after warm-up, ForwardBatch touches
// only the workspace. Pinned on the single-threaded schedule — above the
// flops threshold the GEMM's row fan-out allocates goroutine closures, the
// same caveat the float arena documents.
func TestQuantForwardBatchZeroAlloc(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	spec := nn.NavNetSpec()
	net := spec.Build()
	net.Init(rand.New(rand.NewSource(51)))
	qnet, err := Compile(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stack := tensor.New(8, 1, env.ImageSize, env.ImageSize)
	stack.RandUniform(rand.New(rand.NewSource(52)), 1)
	qnet.ForwardBatch(stack) // warm-up sizes every slot
	if allocs := testing.AllocsPerRun(10, func() {
		qnet.ForwardBatch(stack)
	}); allocs != 0 {
		t.Errorf("steady-state ForwardBatch allocates %v times per call, want 0", allocs)
	}
}
