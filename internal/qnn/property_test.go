package qnn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dronerl/internal/fixed"
	"dronerl/internal/nn"
	"dronerl/internal/tensor"
)

// TestDenseQuantizationErrorBound: for random small dense layers the
// integer result must stay within the analytic worst-case quantization
// error of the float reference: each of the `in` products contributes at
// most (|x| * eps_w + |w| * eps_x + eps_w*eps_x), plus one output rounding
// step.
func TestDenseQuantizationErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	opts := Options{}
	opts.WeightFmt = fixed.Format{Frac: 13}
	opts.ActFmt = fixed.Q78

	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := 1 + r.Intn(32)
		out := 1 + r.Intn(8)
		layer := nn.NewDense("d", in, out)
		for i := range layer.Weight.W.Data() {
			layer.Weight.W.Data()[i] = float32(r.NormFloat64() * 0.5)
		}
		net := nn.NewNetwork(layer)
		q, errC := Compile(net, opts)
		if errC != nil {
			return false
		}
		x := tensor.New(in)
		for i := range x.Data() {
			x.Data()[i] = r.Float32() // activations in [0,1]
		}
		ref := net.Forward(x.Clone())
		words, f := q.Forward(x)
		// Analytic bound.
		epsW := opts.WeightFmt.Eps()
		epsX := opts.ActFmt.Eps()
		bound := float64(in)*(1.0*epsW+2.5*epsX+epsW*epsX) + f.Eps()
		for j := range words {
			diff := math.Abs(f.ToFloat(words[j]) - float64(ref.At(j)))
			if diff > bound {
				t.Logf("in=%d out=%d diff=%v bound=%v", in, out, diff, bound)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40, Rand: rng})
	if err != nil {
		t.Error(err)
	}
}

// TestIntegerOutputsAlwaysInRange: whatever the input, integer Q-values
// decode into the format's representable range (saturation, never wrap).
func TestIntegerOutputsAlwaysInRange(t *testing.T) {
	net := nn.BuildNavNet()
	net.Init(rand.New(rand.NewSource(92)))
	// Inflate some weights to provoke saturation.
	for _, p := range net.Params() {
		for i := range p.W.Data() {
			if i%97 == 0 {
				p.W.Data()[i] *= 50
			}
		}
	}
	q, err := Compile(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 20; trial++ {
		x := tensor.New(1, nn.NavNetInput, nn.NavNetInput)
		for i := range x.Data() {
			x.Data()[i] = rng.Float32() * 4 // out-of-normal-range inputs
		}
		words, f := q.Forward(x)
		for _, w := range words {
			v := f.ToFloat(w)
			if v > f.Max() || v < f.Min() || math.IsNaN(v) {
				t.Fatalf("decoded Q-value %v escapes the format range", v)
			}
		}
	}
}
