package qnn

import (
	"dronerl/internal/mem"
	"dronerl/internal/nn"
	"dronerl/internal/tensor"
)

// Backend is the nn.Backend over the integer inference engine: the float
// network is Compiled once into 16-bit fixed-point layers, and every Infer
// runs entirely in the accelerator's integer arithmetic. The Q-values it
// returns are the dequantized output words, so the greedy argmax is exactly
// the decision the deployed PE datapath would take — including the
// near-tie flips the 16-bit quantization introduces.
//
// Cost model: the quantized network is the artifact stored in the STT-MRAM
// stack, so each inference is charged one full weight stream from the stack
// at Table 1 read timing and energy, recorded against the backend's ledger.
type Backend struct {
	net *Network
	// mram prices the per-inference weight stream.
	mram   *mem.Device
	ledger *mem.EnergyLedger
	cost   nn.BackendCost
	// weightBits is the read traffic of one inference.
	weightBits int64
	out        []float32
}

// NewBackend compiles a trained float network into the integer engine with
// the default formats (Q2.13 weights, Q7.8 activations).
func NewBackend(src *nn.Network) (*Backend, error) {
	qnet, err := Compile(src, Options{})
	if err != nil {
		return nil, err
	}
	return &Backend{
		net:        qnet,
		mram:       mem.STTMRAM(),
		ledger:     mem.NewCompactLedger(),
		weightBits: qnet.WeightBits(),
	}, nil
}

// Name implements nn.Backend.
func (b *Backend) Name() string { return "quant" }

// Infer implements nn.Backend: quantize the observation, run the integer
// pipeline, dequantize the Q-value words. The returned slice is reused by
// the next call.
func (b *Backend) Infer(obs *tensor.Tensor) []float32 {
	words, outFmt := b.net.Forward(obs)
	if cap(b.out) < len(words) {
		b.out = make([]float32, len(words))
	}
	b.out = b.out[:len(words)]
	for i, w := range words {
		b.out[i] = float32(outFmt.ToFloat(w))
	}
	rec := b.ledger.Record(b.mram, mem.Read, b.weightBits)
	b.cost.Inferences++
	b.cost.EnergyMJ += rec.PJ / 1e9
	b.cost.LatencyMS += rec.TimeNS / 1e6
	return b.out
}

// InferBatch implements nn.BatchInferrer: one batched integer pass — one
// int16 GEMM per weighted layer for the B stacked observations — with every
// row bit-identical to the corresponding single-sample Infer (the batched
// path's pinned contract), dequantized into the reusable output slice.
//
// The energy model is where batching pays beyond throughput: the stack
// streams each layer's weights once for the whole batch, so the ledger is
// charged one weight stream per InferBatch call instead of one per request —
// the amortized weight-reuse regime — and the per-request modeled energy and
// weight-stream latency fall as 1/B.
func (b *Backend) InferBatch(batch *tensor.Tensor) []float32 {
	words, outFmt := b.net.ForwardBatch(batch)
	if cap(b.out) < len(words) {
		b.out = make([]float32, len(words))
	}
	b.out = b.out[:len(words)]
	for i, w := range words {
		b.out[i] = float32(outFmt.ToFloat(w))
	}
	rec := b.ledger.Record(b.mram, mem.Read, b.weightBits)
	b.cost.Inferences += int64(batch.Dim(0))
	b.cost.EnergyMJ += rec.PJ / 1e9
	b.cost.LatencyMS += rec.TimeNS / 1e6
	return b.out
}

// Cost implements nn.CostReporter.
func (b *Backend) Cost() nn.BackendCost { return b.cost }

// Ledger exposes the backend's weight-stream ledger (totals only).
func (b *Backend) Ledger() *mem.EnergyLedger { return b.ledger }

func init() {
	if err := nn.RegisterBackend("quant", func(net *nn.Network, _ nn.ArchSpec, _ nn.Config) (nn.Backend, error) {
		return NewBackend(net)
	}); err != nil {
		panic(err)
	}
}
