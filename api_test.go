package dronerl_test

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"testing"

	"dronerl"
	"dronerl/internal/env"
)

// quickScaleFingerprint is the SHA-256 of the complete QuickScale flight
// report (every reward/return series value, SFD, crash count and meta
// cumulative reward, as 64-bit floats) produced by the pre-redesign
// RunFlightExperiment implementation, recorded before the engine rewrite.
// The new Run(ctx, Spec.Flight()) path must reproduce it bit for bit.
const quickScaleFingerprint = "4070933c6429043d351959ef1e4f95f4eab2f4e3598b107ec50cbf2b7055dbd6"

func fingerprintReport(rep *dronerl.FlightReport) string {
	h := sha256.New()
	f := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	for _, e := range rep.Envs {
		h.Write([]byte(e.Env + "|" + e.Kind))
		f(e.WorstLiDegradationPct)
		for _, r := range e.Runs {
			h.Write([]byte{byte(r.Config)})
			f(r.SFD)
			f(r.NormalizedSFD)
			f(float64(r.Crashes))
			for _, v := range r.RewardSeries {
				f(v)
			}
			for _, v := range r.ReturnSeries {
				f(v)
			}
		}
	}
	for _, kind := range []string{"indoor", "outdoor"} {
		f(rep.MetaTrackers[kind].CumulativeReward())
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestNewAPIReproducesQuickScaleBitForBit is the redesign's acceptance
// test: the composable Spec/Run path must regenerate the historical
// QuickScale flight-experiment output exactly — same seeds, same schedule
// derivations, same floats — under a parallel schedule.
func TestNewAPIReproducesQuickScaleBitForBit(t *testing.T) {
	if testing.Short() {
		t.Skip("full QuickScale run takes ~20s; the engine-scale equivalence tests cover short mode")
	}
	spec, err := dronerl.New(
		dronerl.WithSeed(1),
		dronerl.WithMetaIters(500),
		dronerl.WithOnlineIters(400),
		dronerl.WithEvalSteps(400),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Scale(); got != dronerl.QuickScale() {
		t.Fatalf("spec scale %+v is not QuickScale %+v", got, dronerl.QuickScale())
	}
	exp, err := spec.Flight()
	if err != nil {
		t.Fatal(err)
	}
	if err := dronerl.Run(context.Background(), exp); err != nil {
		t.Fatal(err)
	}
	if got := fingerprintReport(exp.Report()); got != quickScaleFingerprint {
		t.Errorf("QuickScale output diverged from the pre-redesign implementation:\n got %s\nwant %s",
			got, quickScaleFingerprint)
	}
}

// TestSpecFlightMatchesDeprecatedWrapper checks the wrapper contract at a
// cheap scale: RunFlightExperiment and the Spec/Run path emit identical
// reports, serial and parallel alike.
func TestSpecFlightMatchesDeprecatedWrapper(t *testing.T) {
	iters := 16
	if testing.Short() {
		iters = 8
	}
	scale := dronerl.FlightScale{MetaIters: iters, OnlineIters: iters, EvalSteps: iters, Seed: 19}
	old, err := dronerl.RunFlightExperiment(scale)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dronerl.New(
		dronerl.WithScale(scale),
	)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := spec.Flight()
	if err != nil {
		t.Fatal(err)
	}
	if err := dronerl.Run(context.Background(), exp, dronerl.WithWorkers(3)); err != nil {
		t.Fatal(err)
	}
	if a, b := fingerprintReport(old), fingerprintReport(exp.Report()); a != b {
		t.Errorf("deprecated wrapper and Spec.Flight diverge: %s vs %s", a, b)
	}
}

func TestNewRejectsInvalidSpecs(t *testing.T) {
	cases := []struct {
		name string
		opts []dronerl.Option
	}{
		{"unknown scenario", []dronerl.Option{dronerl.WithScenarios("atlantis")}},
		{"empty scenario list", []dronerl.Option{dronerl.WithScenarios()}},
		{"zero meta iters", []dronerl.Option{dronerl.WithMetaIters(0)}},
		{"zero online iters", []dronerl.Option{dronerl.WithOnlineIters(0)}},
		{"zero eval steps", []dronerl.Option{dronerl.WithEvalSteps(0)}},
		{"bad gamma", []dronerl.Option{dronerl.WithGamma(1.5)}},
		{"bad lr", []dronerl.Option{dronerl.WithLR(-1)}},
		{"double dqn without target", []dronerl.Option{
			dronerl.WithDoubleDQN(true), dronerl.WithTargetSync(0),
		}},
		{"unknown topology", []dronerl.Option{dronerl.WithTopology(dronerl.Config(42))}},
		{"zero scale via WithScale", []dronerl.Option{dronerl.WithScale(dronerl.FlightScale{})}},
	}
	for _, c := range cases {
		if _, err := dronerl.New(c.opts...); err == nil {
			t.Errorf("%s: New accepted an invalid spec", c.name)
		}
	}
}

func TestSpecDefaultsAndAccessors(t *testing.T) {
	spec, err := dronerl.New()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Topology() != dronerl.L3 {
		t.Errorf("default topology %v, want L3", spec.Topology())
	}
	if spec.Scale() != dronerl.QuickScale() {
		t.Errorf("default scale %+v, want QuickScale", spec.Scale())
	}
	names := spec.ScenarioNames()
	want := []string{"indoor-apartment", "indoor-house", "outdoor-forest", "outdoor-town"}
	if len(names) != len(want) {
		t.Fatalf("default scenarios %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("default scenario %d = %q, want %q", i, names[i], want[i])
		}
	}
	agent, err := spec.Agent()
	if err != nil {
		t.Fatal(err)
	}
	if agent.Net.TrainableWeightCount() >= agent.Net.WeightCount() {
		t.Error("L3 agent must freeze most of the network")
	}
}

func TestScenarioCatalogFacade(t *testing.T) {
	catalog := dronerl.Scenarios()
	if len(catalog) < 10 {
		t.Fatalf("catalog has %d entries, want >= 10", len(catalog))
	}
	if err := dronerl.RegisterScenario("indoor-apartment", nil); err == nil {
		t.Error("facade must surface registration errors")
	}
	seen := map[string]bool{}
	for _, s := range catalog {
		seen[s.Name] = true
	}
	for _, name := range []string{"warehouse", "outdoor-meta-rich", "indoor-apartment-ideal-depth"} {
		if !seen[name] {
			t.Errorf("catalog missing %q", name)
		}
	}
	// Facade registrations probe the builder so the catalog lists a kind.
	if err := dronerl.RegisterScenario("facade-kind-probe", func(seed int64) *env.World {
		return env.OutdoorForest(seed)
	}); err != nil {
		t.Fatal(err)
	}
	for _, s := range dronerl.Scenarios() {
		if s.Name == "facade-kind-probe" && s.Kind != "outdoor" {
			t.Errorf("probed kind %q, want outdoor", s.Kind)
		}
	}
}

// TestRunStreamsProgressThroughFacade exercises the root-level progress
// option end to end on a tiny experiment.
func TestRunStreamsProgressThroughFacade(t *testing.T) {
	spec, err := dronerl.New(
		dronerl.WithSeed(23),
		dronerl.WithMetaIters(6), dronerl.WithOnlineIters(6), dronerl.WithEvalSteps(6),
		dronerl.WithScenarios("indoor-apartment"),
	)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := spec.Flight()
	if err != nil {
		t.Fatal(err)
	}
	var events int
	if err := dronerl.Run(context.Background(), exp,
		dronerl.WithWorkers(2),
		dronerl.WithProgress(func(ev dronerl.Event) { events++ })); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Error("no progress events streamed")
	}
	if exp.Report() == nil {
		t.Error("completed experiment must publish its report")
	}
}

// TestUnknownScenarioErrorListsTheCatalog pins the fast-fail contract: a
// typo'd scenario name is rejected at New time with an error that lists
// every registered name, builtin and generated families alike.
func TestUnknownScenarioErrorListsTheCatalog(t *testing.T) {
	_, err := dronerl.New(dronerl.WithScenarios("indoor-aprtment"))
	if err == nil {
		t.Fatal("misspelled scenario accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown scenario "indoor-aprtment"`) {
		t.Errorf("error does not name the bad input: %v", err)
	}
	if !strings.Contains(msg, "registered scenarios are") {
		t.Errorf("error does not introduce the catalog listing: %v", err)
	}
	for _, name := range []string{"indoor-apartment", "warehouse", "gen-indoor-sparse"} {
		if !strings.Contains(msg, name) {
			t.Errorf("error listing misses registered scenario %q: %v", name, err)
		}
	}
}

func TestSpecCurriculumAndSwarm(t *testing.T) {
	spec, err := dronerl.New(
		dronerl.WithSeed(5),
		dronerl.WithMetaIters(40), dronerl.WithOnlineIters(40), dronerl.WithEvalSteps(40),
		dronerl.WithScenarios("gen-indoor-sparse"),
		dronerl.WithSwarm(3),
		dronerl.WithCurriculum(
			dronerl.Stage{Name: "a", Spec: dronerl.GenSpec{Kind: "indoor", Corridor: 1.3, Density: 2}},
			dronerl.Stage{Name: "b", Spec: dronerl.GenSpec{Kind: "indoor", Corridor: 0.9, Density: 4}},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := spec.Curriculum()
	if err != nil {
		t.Fatal(err)
	}
	if err := dronerl.Run(context.Background(), cur); err != nil {
		t.Fatal(err)
	}
	rep := cur.Report()
	if rep == nil || len(rep.Trace) == 0 {
		t.Fatal("curriculum run produced no promotion trace")
	}
	for _, rec := range rep.Trace {
		if rec.Stage != "a" && rec.Stage != "b" {
			t.Errorf("trace names unknown stage %q", rec.Stage)
		}
	}

	swarm, err := spec.Swarm()
	if err != nil {
		t.Fatal(err)
	}
	if err := dronerl.Run(context.Background(), swarm); err != nil {
		t.Fatal(err)
	}
	if got := swarm.Report(); got == nil || len(got.Drones) != 3 {
		t.Fatalf("swarm report %+v, want 3 drones", got)
	}
}

func TestWithGeneratedRegistersAndSelects(t *testing.T) {
	g := dronerl.GenSpec{Kind: "outdoor", Corridor: 4.5, Density: 0.8, Turbulence: 0.2}
	spec, err := dronerl.New(dronerl.WithGenerated(g))
	if err != nil {
		t.Fatal(err)
	}
	names := spec.ScenarioNames()
	if len(names) != 1 || names[0] != g.FamilyName() {
		t.Fatalf("generated family not selected: %v", names)
	}
	found := false
	for _, s := range dronerl.Scenarios() {
		if s.Name == g.FamilyName() {
			found = true
			if s.Kind != "outdoor" {
				t.Errorf("family registered with kind %q", s.Kind)
			}
		}
	}
	if !found {
		t.Fatalf("WithGenerated did not register %q in the catalog", g.FamilyName())
	}
	// Same spec again: idempotent, not a duplicate error.
	if _, err := dronerl.New(dronerl.WithGenerated(g)); err != nil {
		t.Fatalf("re-registering the same generated family failed: %v", err)
	}
	if _, err := dronerl.New(dronerl.WithGenerated(dronerl.GenSpec{Kind: "nope"})); err == nil {
		t.Fatal("invalid generated spec accepted")
	}
	if _, err := dronerl.New(dronerl.WithSwarm(0)); err == nil {
		t.Fatal("zero swarm size accepted")
	}
	if _, err := dronerl.New(dronerl.WithCurriculum()); err == nil {
		t.Fatal("empty curriculum accepted")
	}
}
