// Indoor navigation: compares all four training topologies (L2, L3, L4,
// E2E) in the indoor apartment — the paper's tightest environment
// (d_min = 0.7 m) — starting from one shared indoor meta-model. This is a
// single-environment slice of Fig. 10/11.
//
//	go run ./examples/indoor_navigation
package main

import (
	"fmt"
	"log"

	"dronerl/internal/env"
	"dronerl/internal/nn"
	"dronerl/internal/report"
	"dronerl/internal/rl"
	"dronerl/internal/transfer"
)

func main() {
	const seed = 11
	spec := nn.NavNetSpec()
	meta := env.IndoorMeta(seed)
	fmt.Println("meta-training E2E on the indoor meta-environment (1200 iterations)...")
	snap, _ := transfer.MetaTrain(meta, spec, 1200, rl.Options{
		Seed: seed, BatchSize: 4, EpsDecaySteps: 600,
	})

	const evalSteps = 600
	t := report.New("indoor apartment: topology comparison",
		"Config", "trainable weights", "reward curve", "eval SFD m", "eval crashes")
	var e2eSFD float64
	sfds := make(map[nn.Config]float64)
	for _, cfg := range nn.Configs {
		world := env.IndoorApartment(seed + 1) // same layout for every run
		res, err := transfer.RunOnline(snap, world, spec, cfg, 800, evalSteps, rl.Options{
			Seed: seed + 2 + int64(cfg), BatchSize: 4, EpsStart: 0.5, EpsDecaySteps: 400,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Smoothed distance-per-crash over the fixed evaluation flight
		// (robust when a run finishes crash-free).
		sfd := float64(evalSteps) * world.DFrame / float64(res.Eval.Crashes()+1)
		sfds[cfg] = sfd
		if cfg == nn.E2E {
			e2eSFD = sfd
		}
		t.Addf(cfg.String(), spec.TrainedWeights(cfg),
			report.Sparkline(res.Training.RewardSeries(), 36),
			sfd, res.Eval.Crashes())
	}
	fmt.Println(t.String())

	if e2eSFD > 0 {
		fmt.Println("normalized SFD vs E2E (Fig. 11 view):")
		for _, cfg := range []nn.Config{nn.L2, nn.L3, nn.L4} {
			fmt.Printf("  %-3s %.3f\n", cfg, sfds[cfg]/e2eSFD)
		}
	}
}
