// Indoor navigation: compares all four training topologies (L2, L3, L4,
// E2E) in the indoor apartment — the paper's tightest environment
// (d_min = 0.7 m) — starting from one shared indoor meta-model. This is a
// single-environment slice of Fig. 10/11, expressed as a one-scenario
// flight experiment on the composable API: the engine meta-trains the
// indoor model, fans the per-topology online runs across all cores, and
// streams per-run progress while it works.
//
//	go run ./examples/indoor_navigation
package main

import (
	"context"
	"fmt"
	"log"

	"dronerl"
	"dronerl/internal/nn"
	"dronerl/internal/report"
)

func main() {
	spec, err := dronerl.New(
		dronerl.WithSeed(11),
		dronerl.WithScenarios("indoor-apartment"),
		dronerl.WithMetaIters(1200),
		dronerl.WithOnlineIters(800),
		dronerl.WithEvalSteps(600),
	)
	if err != nil {
		log.Fatal(err)
	}
	exp, err := spec.Flight()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("flying the indoor apartment under every topology...")
	err = dronerl.Run(context.Background(), exp,
		dronerl.WithProgress(func(ev dronerl.Event) {
			if ev.Phase == "meta-train" {
				fmt.Printf("  meta-model trained on %q (reward %.3f)\n", ev.Env, ev.Reward)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	er := exp.Report().Envs[0]
	t := report.New("indoor apartment: topology comparison",
		"Config", "reward curve", "eval SFD m", "normalized vs E2E", "crashes")
	for _, run := range er.Runs {
		t.Addf(run.Config.String(),
			report.Sparkline(run.RewardSeries, 36),
			run.SFD, run.NormalizedSFD, run.Crashes)
	}
	fmt.Println(t.String())

	fmt.Println("normalized SFD vs E2E (Fig. 11 view):")
	for _, cfg := range []nn.Config{nn.L2, nn.L3, nn.L4} {
		if run, ok := er.Run(cfg); ok {
			fmt.Printf("  %-3s %.3f\n", cfg, run.NormalizedSFD)
		}
	}
}
