// Mission: the co-design payoff end to end, driven through the unified
// experiment engine. The same transferred policy flies the indoor apartment
// under each training topology while every camera frame is charged against
// a fixed compute-energy budget using the hardware model. The
// L-configurations process several times more frames — and therefore fly
// several times longer missions — than the E2E baseline, which is the
// paper's bottom line expressed in mission terms.
//
//	go run ./examples/mission
package main

import (
	"context"
	"fmt"
	"log"

	"dronerl"
	"dronerl/internal/report"
)

func main() {
	const budgetJ = 60.0 // compute-energy slice of a small drone battery
	fmt.Printf("flying one mission per topology with a %.0f J compute budget...\n\n", budgetJ)

	spec, err := dronerl.New(dronerl.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	exp := spec.Missions(budgetJ, true)
	err = dronerl.Run(context.Background(), exp,
		dronerl.WithProgress(func(ev dronerl.Event) {
			fmt.Printf("  %s\n", ev)
		}))
	if err != nil {
		log.Fatal(err)
	}
	results := exp.Results()

	t := report.New("co-design missions (indoor apartment, online learning)",
		"Config", "frames", "distance m", "crashes", "energy J", "wall-clock s", "fps")
	var e2eFrames int
	for _, r := range results {
		t.Addf(r.Config.String(), r.Frames, r.DistanceM, r.Crashes, r.EnergySpentJ, r.WallClockS, r.FPS)
		if r.Config.String() == "E2E" {
			e2eFrames = r.Frames
		}
	}
	fmt.Println(t.String())
	for _, r := range results {
		if r.Config.String() != "E2E" && e2eFrames > 0 {
			fmt.Printf("%s flies %.1fx the E2E frames on the same battery\n",
				r.Config, float64(r.Frames)/float64(e2eFrames))
		}
	}
}
