// Curriculum: staged training over procedurally generated worlds.
//
// Instead of adapting to one fixed test world, the agent climbs a ladder of
// generated scenarios — wide corridors first, then narrower, denser and
// gustier ones — and is promoted only when its moving-average reward and
// safe flight distance clear the stage's thresholds. With a fixed seed the
// whole promotion trace is reproducible run to run.
//
//	go run ./examples/curriculum
package main

import (
	"context"
	"fmt"
	"log"

	"dronerl"
)

func main() {
	// A custom two-stage ladder; dronerl.DefaultCurriculum("indoor") gives
	// the stock three-stage one. Every knob of a GenSpec that is left zero
	// picks a kind-appropriate default.
	spec, err := dronerl.New(
		dronerl.WithSeed(8),
		dronerl.WithMetaIters(150), dronerl.WithOnlineIters(150), dronerl.WithEvalSteps(100),
		dronerl.WithCurriculum(
			dronerl.Stage{
				Name: "roomy",
				Spec: dronerl.GenSpec{Kind: "indoor", Corridor: 1.3, Density: 2.5},
			},
			dronerl.Stage{
				Name:          "cluttered",
				Spec:          dronerl.GenSpec{Kind: "indoor", Corridor: 0.9, Density: 5, BoxFrac: 0.3},
				PromoteReward: 0.1, // modest bar for an example-sized budget
			},
		),
	)
	if err != nil {
		log.Fatal(err)
	}

	cur, err := spec.Curriculum()
	if err != nil {
		log.Fatal(err)
	}
	err = dronerl.Run(context.Background(), cur, dronerl.WithProgress(func(ev dronerl.Event) {
		fmt.Printf("  [%s] %s: reward %.3f\n", ev.Phase, ev.Env, ev.Reward)
	}))
	if err != nil {
		log.Fatal(err)
	}

	rep := cur.Report()
	fmt.Println("\npromotion trace:")
	for _, rec := range rep.Trace {
		fmt.Printf("  %-10s attempt %d: reward %.3f, SFD %.1f m, promoted=%v\n",
			rec.Stage, rec.Attempt+1, rec.Reward, rec.SFD, rec.Promoted)
	}
	if rep.Completed {
		fmt.Println("curriculum completed: every stage promoted")
	} else {
		fmt.Printf("curriculum stopped at stage %q\n", rep.FailedStage)
	}
}
