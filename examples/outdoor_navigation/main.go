// Outdoor navigation: the transfer-gap demonstration. The same outdoor
// meta-model is deployed to the forest (obstacles shaped like the
// meta-world's) and to the town (box-shaped buildings the meta-model never
// saw). The town shows the larger degradation under frozen-feature
// topologies — the effect the paper reports in Fig. 11 and attributes to
// "large disparities [between] the meta-environment and test environments".
//
//	go run ./examples/outdoor_navigation
package main

import (
	"fmt"
	"log"

	"dronerl/internal/env"
	"dronerl/internal/nn"
	"dronerl/internal/report"
	"dronerl/internal/rl"
	"dronerl/internal/transfer"
)

func main() {
	const seed = 21
	spec := nn.NavNetSpec()
	meta := env.OutdoorMeta(seed)
	fmt.Println("meta-training E2E on the outdoor meta-environment (1200 iterations)...")
	snap, _ := transfer.MetaTrain(meta, spec, 1200, rl.Options{
		Seed: seed, BatchSize: 4, EpsDecaySteps: 600,
	})

	worlds := map[string]func() *env.World{
		"outdoor forest": func() *env.World { return env.OutdoorForest(seed + 1) },
		"outdoor town":   func() *env.World { return env.OutdoorTown(seed + 2) },
	}
	const evalSteps = 600
	t := report.New("outdoor transfer gap (L2 = most frozen, E2E = fully plastic)",
		"Environment", "Config", "eval SFD m", "normalized vs E2E")
	for _, name := range []string{"outdoor forest", "outdoor town"} {
		sfd := map[nn.Config]float64{}
		for _, cfg := range nn.Configs {
			w := worlds[name]()
			res, err := transfer.RunOnline(snap, w, spec, cfg, 800, evalSteps, rl.Options{
				Seed: seed + 3 + int64(cfg), BatchSize: 4, EpsStart: 0.5, EpsDecaySteps: 400,
			})
			if err != nil {
				log.Fatal(err)
			}
			// Smoothed distance-per-crash over the fixed evaluation
			// flight (robust when a run finishes crash-free).
			sfd[cfg] = float64(evalSteps) * w.DFrame / float64(res.Eval.Crashes()+1)
		}
		for _, cfg := range nn.Configs {
			norm := 0.0
			if sfd[nn.E2E] > 0 {
				norm = sfd[cfg] / sfd[nn.E2E]
			}
			t.Addf(name, cfg.String(), sfd[cfg], norm)
		}
	}
	fmt.Println(t.String())
	fmt.Println("expectation (paper Fig. 11): the town's frozen-feature runs trail E2E")
	fmt.Println("by more than the forest's, because its box-world features were never")
	fmt.Println("in the meta-model; richer meta-environments close the gap.")
}
