// Outdoor navigation: the transfer-gap demonstration. The same outdoor
// meta-model is deployed to the forest (obstacles shaped like the
// meta-world's) and to the town (box-shaped buildings the meta-model never
// saw). The town shows the larger degradation under frozen-feature
// topologies — the effect the paper reports in Fig. 11 and attributes to
// "large disparities [between] the meta-environment and test environments".
//
// With the composable API this is just a two-scenario flight experiment:
// the engine notices both scenarios share the outdoor kind, trains the
// meta-model once, and sweeps every topology in both worlds.
//
//	go run ./examples/outdoor_navigation
package main

import (
	"context"
	"fmt"
	"log"

	"dronerl"
	"dronerl/internal/report"
)

func main() {
	spec, err := dronerl.New(
		dronerl.WithSeed(21),
		dronerl.WithScenarios("outdoor-forest", "outdoor-town"),
		dronerl.WithMetaIters(1200),
		dronerl.WithOnlineIters(800),
		dronerl.WithEvalSteps(600),
	)
	if err != nil {
		log.Fatal(err)
	}
	exp, err := spec.Flight()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training one outdoor meta-model and deploying to forest and town...")
	if err := dronerl.Run(context.Background(), exp); err != nil {
		log.Fatal(err)
	}

	t := report.New("outdoor transfer gap (L2 = most frozen, E2E = fully plastic)",
		"Environment", "Config", "eval SFD m", "normalized vs E2E")
	for _, er := range exp.Report().Envs {
		for _, run := range er.Runs {
			t.Addf(er.Env, run.Config.String(), run.SFD, run.NormalizedSFD)
		}
	}
	fmt.Println(t.String())

	for _, er := range exp.Report().Envs {
		fmt.Printf("%s: worst frozen-topology degradation vs E2E: %.1f%%\n",
			er.Env, er.WorstLiDegradationPct)
	}
}
