// Energy budget: a mission-planning view of the hardware model. Given a
// drone battery budget for compute, how many camera frames can each
// training topology process, and how fast can the drone fly in each of the
// paper's six environment classes while still avoiding obstacles
// (v = fps x d_min, Fig. 1)? The final section flies an actual (tiny)
// flight experiment with the systolic inference backend, so the energy
// numbers come from a per-run ledger instead of the closed-form model.
//
//	go run ./examples/energy_budget
package main

import (
	"context"
	"fmt"
	"log"

	"dronerl"
	"dronerl/internal/env"
	"dronerl/internal/hw"
	"dronerl/internal/nn"
	"dronerl/internal/report"
)

func main() {
	m := hw.NewModel()
	const batch = 4
	// A small drone might allocate ~2 Wh (7.2 kJ) of battery to compute.
	const computeBudgetJ = 7200.0

	t := report.New("frames of online learning per 2 Wh compute budget (batch 4)",
		"Config", "per-frame mJ", "frames", "minutes @ its own fps")
	for _, cfg := range nn.Configs {
		perFrame := m.EnergyPerFrameMJ(cfg)
		frames := computeBudgetJ * 1000 / perFrame
		fps := m.Iteration(cfg, batch).FPS()
		t.Addf(cfg.String(), perFrame, int(frames), frames/fps/60)
	}
	fmt.Println(t.String())

	t2 := report.New("max safe velocity by environment class (m/s, v = fps x d_min)",
		"Environment", "d_min m", "L2", "L3", "L4", "E2E")
	for _, e := range env.Fig1DMin {
		row := []interface{}{e.Name, e.DMin}
		for _, cfg := range nn.Configs {
			row = append(row, m.MaxVelocity(cfg, batch, e.DMin))
		}
		t2.Addf(row...)
	}
	fmt.Println(t2.String())

	l4 := m.Iteration(nn.L4, batch).FPS()
	e2e := m.Iteration(nn.E2E, batch).FPS()
	fmt.Printf("the L4 topology sustains %.1fx the E2E frame rate, which translates\n", l4/e2e)
	fmt.Printf("directly into a %.1fx faster safe flight speed (the paper reports >3x).\n\n", l4/e2e)

	// Measured, not modeled: run a tiny flight experiment whose greedy
	// evaluations execute on the systolic backend, and read the energy
	// back from the per-run ledgers the engine merged.
	fmt.Println("flying a tiny experiment on the systolic backend...")
	spec, err := dronerl.New(
		dronerl.WithSeed(4),
		dronerl.WithMetaIters(60), dronerl.WithOnlineIters(60), dronerl.WithEvalSteps(60),
		dronerl.WithScenarios("indoor-apartment"),
		dronerl.WithBackend(dronerl.Systolic),
	)
	if err != nil {
		log.Fatal(err)
	}
	exp, err := spec.Flight()
	if err != nil {
		log.Fatal(err)
	}
	if err := dronerl.Run(context.Background(), exp); err != nil {
		log.Fatal(err)
	}
	rep := exp.Report()
	fmt.Println(rep.BuildEnergyTable().String())
	fmt.Print("merged evaluation-phase memory traffic:\n" + rep.Energy.String())
}
