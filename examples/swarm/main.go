// Swarm: a multi-drone mission sharing one policy.
//
// One policy is meta-trained and adapted online in a generated world, then
// a fleet of drone clones flies it simultaneously: every tick the whole
// swarm's depth images are stacked into a single batch, so the policy costs
// one GEMM per layer for the entire fleet — the same batching economics the
// paper's PE array exploits. Per-drone metrics are merged in index order
// and the mission is deterministic for a fixed seed.
//
//	go run ./examples/swarm
package main

import (
	"context"
	"fmt"
	"log"

	"dronerl"
)

func main() {
	spec, err := dronerl.New(
		dronerl.WithSeed(11),
		dronerl.WithMetaIters(150), dronerl.WithOnlineIters(150), dronerl.WithEvalSteps(120),
		dronerl.WithGenerated(dronerl.GenSpec{Kind: "outdoor", Corridor: 4.5, Density: 1}),
		dronerl.WithSwarm(5),
	)
	if err != nil {
		log.Fatal(err)
	}

	swarm, err := spec.Swarm()
	if err != nil {
		log.Fatal(err)
	}
	err = dronerl.Run(context.Background(), swarm, dronerl.WithProgress(func(ev dronerl.Event) {
		fmt.Printf("  [%s] %s: reward %.3f\n", ev.Phase, ev.Env, ev.Reward)
	}))
	if err != nil {
		log.Fatal(err)
	}

	rep := swarm.Report()
	fmt.Printf("\nmission over %q, %d drones x %d steps:\n", rep.Env, len(rep.Drones), rep.Drones[0].Steps)
	for _, d := range rep.Drones {
		fmt.Printf("  drone %d: %5.1f m flown, %d crashes, SFD %5.1f m\n",
			d.Drone, d.Distance, d.Crashes, d.SFD)
	}
	fmt.Printf("fleet: %.1f m total, %d crashes, mean SFD %.1f m, mean reward %.3f\n",
		rep.TotalDistance, rep.TotalCrashes, rep.MeanSFD, rep.MeanReward)
}
