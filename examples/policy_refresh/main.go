// Policy refresh: the deployment-side half of the actor/learner pipeline.
// A learner keeps training a navigation policy online and publishes the
// trainable weights through an nn.PolicyBoard — the atomic double-buffered
// snapshot store of the async pipeline. A separately deployed drone flies
// greedily on the compiled 16-bit quant backend (the PE datapath's numeric
// behaviour) and refreshes its policy between missions with
// rl.Agent.AdoptPolicy: the adoption installs the published weights AND
// rebuilds the compiled backend over them — the "backend hand-off on swap".
// Without the rebuild the drone would keep flying the stale compiled policy
// no matter how many snapshots it adopted.
//
//	go run ./examples/policy_refresh
package main

import (
	"fmt"
	"log"

	"dronerl/internal/env"
	"dronerl/internal/nn"
	"dronerl/internal/report"
	"dronerl/internal/rl"
	"dronerl/internal/transfer"

	// Linked for its backend registration: the deployed drone flies on the
	// 16-bit integer engine.
	_ "dronerl/internal/qnn"
)

func main() {
	const (
		metaIters  = 300 // meta-environment pre-training
		chunkIters = 400 // learner training between publishes
		rounds     = 4   // publish/adopt/fly cycles
		flySteps   = 300 // greedy mission length per round
	)
	spec := nn.NavNetSpec()

	// Pre-train a transferable meta-model and deploy it twice: once as the
	// learner (keeps training online, float reference) and once as the
	// deployed drone (flies greedily on the quant backend, frozen L3 tail).
	meta := env.IndoorMeta(1)
	snap, _ := transfer.MetaTrain(meta, spec, metaIters, rl.Options{
		Seed: 1, BatchSize: 4, EpsDecaySteps: metaIters / 2,
	})
	trainWorld := env.IndoorApartment(2)
	learner, err := transfer.Deploy(snap, spec, nn.L3, rl.Options{
		Seed: 2, BatchSize: 4, EpsStart: 0.5, EpsDecaySteps: rounds * chunkIters / 2, LR: 0.001,
	})
	if err != nil {
		log.Fatal(err)
	}
	droneWorld := env.IndoorApartment(3)
	drone, err := transfer.Deploy(snap, spec, nn.L3, rl.Options{
		Seed: 3, EvalBackend: "quant",
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := drone.ActivateEvalBackend(); err != nil {
		log.Fatal(err)
	}

	board := nn.NewPolicyBoard()
	t := report.New("continuous deployment: learn → publish → adopt → fly",
		"round", "policy version", "adopted", "mission SFD (m)", "mission crashes")
	trainer := rl.NewTrainer(trainWorld, learner, rounds*chunkIters)
	for round := 1; round <= rounds; round++ {
		// The learner trains another chunk and publishes the L3 tail.
		trainer.Run(chunkIters)
		version := board.Publish(learner.Net, spec.Name)

		// The deployed drone picks the snapshot up between missions; the
		// adoption rebuilds its compiled quant backend over the new tail.
		adopted, err := drone.AdoptPolicy(board)
		if err != nil {
			log.Fatal(err)
		}
		droneWorld.Seed(int64(100 * round))
		droneWorld.Spawn()
		mission := (&rl.Trainer{World: droneWorld, Agent: drone}).Evaluate(flySteps)
		t.Addf(round, int(version), fmt.Sprint(adopted),
			mission.SafeFlightDistance(), mission.Crashes())
	}
	fmt.Println(t.String())
	fmt.Printf("drone flew %d missions on the %q backend, refreshing its policy from %d publishes\n",
		rounds, drone.EvalBackend().Name(), board.Version())
}
