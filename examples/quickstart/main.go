// Quickstart: the smallest end-to-end use of the library's composable API.
//
// It prices the hardware (one table), builds a validated experiment Spec
// with functional options, picks a scenario from the catalog, meta-trains a
// small model, deploys it with only the last three FC layers trainable (the
// paper's L3 topology), and reports how far the drone flies between crashes
// before and after online learning.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dronerl"
	"dronerl/internal/env"
	"dronerl/internal/metrics"
	"dronerl/internal/rl"
)

func main() {
	// 1. Hardware: why online learning must avoid NVM writes.
	m := dronerl.NewHardwareModel()
	lat, en := m.Reductions(dronerl.L4)
	fmt.Printf("hardware model: training the last 4 FC layers instead of the whole net\n")
	fmt.Printf("  cuts per-iteration latency by %.1f%% and energy by %.1f%% (paper: 79.4%%/83.45%%)\n\n", lat, en)

	// 2. A validated Spec: topology, seed and hyper-parameters in one
	// place. Inconsistent combinations fail here, not mid-flight.
	spec, err := dronerl.New(
		dronerl.WithTopology(dronerl.L3),
		dronerl.WithSeed(8),
		dronerl.WithBatchSize(4),
		dronerl.WithEpsilon(0.5, 0.05),
		dronerl.WithEpsDecaySteps(300),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. A scenario from the catalog (dronerl.Scenarios lists all).
	world := buildScenario("indoor-apartment", 8)
	fmt.Printf("meta-training on the %s meta-environment...\n", world.Kind)
	snap := dronerl.MetaTrain(world, 800, rl.Options{Seed: 7, BatchSize: 4, EpsDecaySteps: 400})

	// 4. Transfer: download the meta-model into an agent frozen per L3.
	agent, err := spec.Deploy(snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed to %q: %d of %d weights trainable (L3)\n",
		world.Name, agent.Net.TrainableWeightCount(), agent.Net.WeightCount())

	// 5. Online RL in the deployed world.
	trainer := rl.NewTrainer(world, agent, 600)
	before := trainer.Evaluate(400)
	trainer.Run(600)
	after := trainer.Evaluate(400)

	fmt.Printf("\nsafe flight distance before online RL: %s\n", sfd(before, world.DFrame, 400))
	fmt.Printf("safe flight distance after  online RL: %s\n", sfd(after, world.DFrame, 400))
}

// buildScenario resolves a catalog scenario and builds its world.
func buildScenario(name string, seed int64) *env.World {
	s, ok := env.LookupScenario(name)
	if !ok {
		log.Fatalf("scenario %q not in catalog", name)
	}
	return s.Build(seed)
}

// sfd renders a safe-flight-distance result, crediting the full flown
// distance when the whole evaluation passed without a crash.
func sfd(t *metrics.FlightTracker, dframe float64, steps int) string {
	if t.Crashes() == 0 {
		return fmt.Sprintf(">%.1f m (no crashes in %d steps)", float64(steps)*dframe, steps)
	}
	return fmt.Sprintf("%.1f m (%d crashes)", t.SafeFlightDistance(), t.Crashes())
}
