// Quickstart: the smallest end-to-end use of the library.
//
// It prices the hardware (one table), meta-trains a small model, transfers
// it to a test environment with only the last three FC layers trainable
// (the paper's L3 topology), and reports how far the drone flies between
// crashes before and after online learning.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dronerl"
	"dronerl/internal/metrics"
	"dronerl/internal/rl"
)

func main() {
	// 1. Hardware: why online learning must avoid NVM writes.
	m := dronerl.NewHardwareModel()
	lat, en := m.Reductions(dronerl.L4)
	fmt.Printf("hardware model: training the last 4 FC layers instead of the whole net\n")
	fmt.Printf("  cuts per-iteration latency by %.1f%% and energy by %.1f%% (paper: 79.4%%/83.45%%)\n\n", lat, en)

	// 2. Algorithm: transfer learning then online RL on the last layers.
	world := dronerl.TestEnvironments(7)[0] // indoor apartment
	fmt.Printf("meta-training on the %s meta-environment...\n", world.Kind)
	snap := dronerl.MetaTrain(world, 800, rl.Options{Seed: 7, BatchSize: 4, EpsDecaySteps: 400})

	agent, err := dronerl.Deploy(snap, dronerl.L3, rl.Options{Seed: 8, BatchSize: 4, EpsStart: 0.5, EpsDecaySteps: 300})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed to %q: %d of %d weights trainable (L3)\n",
		world.Name, agent.Net.TrainableWeightCount(), agent.Net.WeightCount())

	trainer := rl.NewTrainer(world, agent, 600)
	before := trainer.Evaluate(400)
	trainer.Run(600)
	after := trainer.Evaluate(400)

	fmt.Printf("\nsafe flight distance before online RL: %s\n", sfd(before, world.DFrame, 400))
	fmt.Printf("safe flight distance after  online RL: %s\n", sfd(after, world.DFrame, 400))
}

// sfd renders a safe-flight-distance result, crediting the full flown
// distance when the whole evaluation passed without a crash.
func sfd(t *metrics.FlightTracker, dframe float64, steps int) string {
	if t.Crashes() == 0 {
		return fmt.Sprintf(">%.1f m (no crashes in %d steps)", float64(steps)*dframe, steps)
	}
	return fmt.Sprintf("%.1f m (%d crashes)", t.SafeFlightDistance(), t.Crashes())
}
