// Command hwsim explores the hardware performance model beyond the paper's
// operating point: batch-size sweeps, STT-MRAM write-latency sensitivity,
// and what-if comparisons against an all-SRAM or all-NVM platform.
//
// Usage:
//
//	hwsim [-sweep batch|writelat|device]
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"dronerl/internal/hw"
	"dronerl/internal/mem"
	"dronerl/internal/nn"
	"dronerl/internal/report"
	"dronerl/internal/tensor"
)

func main() {
	sweep := flag.String("sweep", "batch", "batch, writelat, device, timeline, breakdown or backend")
	cfgName := flag.String("config", "L4", "topology for -sweep timeline (L2, L3, L4, E2E)")
	batch := flag.Int("batch", 4, "batch size for -sweep timeline")
	frames := flag.Int("frames", 32, "training frames to charge for -sweep backend")
	flag.Parse()

	switch *sweep {
	case "batch":
		sweepBatch()
	case "writelat":
		sweepWriteLatency()
	case "device":
		sweepDevice()
	case "timeline":
		showTimeline(*cfgName, *batch)
	case "breakdown":
		showBreakdown()
	case "backend":
		showBackendBreakdown(*frames)
	default:
		fmt.Println("unknown sweep; use batch, writelat, device, timeline, breakdown or backend")
	}
}

// showBackendBreakdown runs the systolic inference backend over the scaled
// NavNet — the network the flight experiments actually fly — charging one
// inference and one backward propagation per frame for every topology, and
// attributes the per-frame energy to its physical sinks from the backend's
// ledger. This is the ledger-accounted counterpart of -sweep breakdown
// (which prices the paper's full AlexNet analytically): the NVM-write
// column again vanishes for every L-topology.
func showBackendBreakdown(frames int) {
	if frames < 1 {
		frames = 1
	}
	spec := nn.NavNetSpec()
	t := report.New(fmt.Sprintf("NavNet per-frame energy by sink, systolic backend (mJ, %d frames)", frames),
		"Config", "PE compute", "MRAM reads", "NVM writes", "DDR link", "total", "Mcycles/frame")
	for _, cfg := range nn.Configs {
		net := spec.Build()
		net.Init(rand.New(rand.NewSource(1)))
		net.SetConfig(cfg)
		b, err := hw.NewSystolicBackend(net, spec, cfg)
		if err != nil {
			fmt.Println("backend:", err)
			return
		}
		obs := tensor.New(1, nn.NavNetInput, nn.NavNetInput)
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < frames; i++ {
			obs.RandUniform(rng, 1)
			b.Infer(obs)
			b.ChargeTrainStep()
		}
		br := b.Breakdown()
		n := float64(frames)
		t.Addf(cfg.String(), br.ComputeMJ/n, br.MRAMReadMJ/n, br.NVMWriteMJ/n,
			br.LinkMJ/n, br.TotalMJ()/n, float64(b.Cost().Cycles)/n/1e6)
	}
	fmt.Println(t.String())
	fmt.Println("ledger and breakdown agree by construction; see internal/hw/backend_test.go")
}

// showTimeline prints the per-phase schedule of one training frame.
func showTimeline(cfgName string, batch int) {
	var cfg nn.Config
	switch cfgName {
	case "L2":
		cfg = nn.L2
	case "L3":
		cfg = nn.L3
	case "L4":
		cfg = nn.L4
	case "E2E":
		cfg = nn.E2E
	default:
		fmt.Printf("unknown config %q\n", cfgName)
		return
	}
	m := hw.NewModel()
	fmt.Println(m.BuildTimeline(cfg, batch).Render(60))
}

// showBreakdown attributes per-iteration energy to its physical sinks.
func showBreakdown() {
	m := hw.NewModel()
	t := report.New("per-iteration energy by sink (mJ)",
		"Config", "PE compute", "MRAM reads", "NVM writes", "DDR link", "total")
	for _, cfg := range nn.Configs {
		b := m.Breakdown(cfg)
		t.Addf(cfg.String(), b.ComputeMJ, b.MRAMReadMJ, b.NVMWriteMJ, b.LinkMJ, b.TotalMJ())
	}
	fmt.Println(t.String())
}

// sweepBatch extends Fig. 13(a) to a wide batch range.
func sweepBatch() {
	m := hw.NewModel()
	t := report.New("sustainable FPS vs batch size", "Config", "b=1", "b=2", "b=4", "b=8", "b=16", "b=32", "b=64")
	for _, cfg := range nn.Configs {
		cells := []interface{}{cfg.String()}
		for _, b := range []int{1, 2, 4, 8, 16, 32, 64} {
			cells = append(cells, m.Iteration(cfg, b).FPS())
		}
		t.Addf(cells...)
	}
	fmt.Println(t.String())
}

// sweepWriteLatency shows how the E2E baseline degrades as NVM write
// latency grows — the sensitivity behind the paper's claim that *all* NVM
// technologies (not just STT-MRAM) need the proposed co-design.
func sweepWriteLatency() {
	t := report.New("E2E iteration latency vs NVM write latency (L4 shown for contrast)",
		"write ns/row", "E2E fwd+bwd ms", "L4 fwd+bwd ms", "L4 advantage")
	for _, wl := range []float64{10, 30, 50, 100, 200, 500} {
		m := hw.NewModel()
		m.MRAM.WriteLatencyNS = wl
		e2e := m.ForwardLatencyMS() + m.BackwardLatencyMS(nn.E2E)
		l4 := m.ForwardLatencyMS() + m.BackwardLatencyMS(nn.L4)
		t.Addf(wl, e2e, l4, e2e/l4)
	}
	fmt.Println(t.String())
}

// sweepDevice compares the proposed hybrid against hypothetical all-SRAM
// (no density advantage, huge die) and naive all-NVM platforms.
func sweepDevice() {
	t := report.New("per-iteration cost by platform (L4 topology)",
		"Platform", "Latency ms", "Energy mJ", "Note")

	hybrid := hw.NewModel()
	lat := hybrid.ForwardLatencyMS() + hybrid.BackwardLatencyMS(nn.L4)
	en := hybrid.ForwardEnergyMJ() + hybrid.BackwardEnergyMJ(nn.L4)
	t.Addf("hybrid MRAM+SRAM (paper)", lat, en, "weights in stack, updates in SRAM")

	naive := hw.NewModel()
	// All-NVM: even the trained layers live in (and write back to) MRAM.
	naiveBwd := 0.0
	naiveBwdEnergy := 0.0
	for i := len(naive.Arch.FCs) - 4; i < len(naive.Arch.FCs); i++ {
		c := naive.FCBackwardCost(i, nn.E2E) // E2E placement = MRAM for FC1/FC2
		naiveBwd += c.LatencyMS
		naiveBwdEnergy += c.EnergyMJ
	}
	// Force NVM write costs on FC3..FC5 too by re-pricing with the
	// write stream added explicitly.
	extra := 0.0
	extraEn := 0.0
	for _, f := range naive.Arch.FCs[len(naive.Arch.FCs)-3:] {
		bits := int64(f.Weights()) * 16
		extra += naive.MRAM.AccessTimeNS(mem.Write, bits) / 1e6
		extraEn += naive.MRAM.EnergyPJ(mem.Write, bits) / 1e9
	}
	t.Addf("all-NVM (no SRAM buffer)", naive.ForwardLatencyMS()+naiveBwd+extra,
		naive.ForwardEnergyMJ()+naiveBwdEnergy+extraEn, "every update pays 30ns/4.5pJ writes")

	sram := hw.NewModel()
	// All-SRAM: streaming stays the same in this model; the (unpriced)
	// cost is the ~112 MB of on-die SRAM it would take.
	t.Addf("all-SRAM (hypothetical)", sram.ForwardLatencyMS()+sram.BackwardLatencyMS(nn.L4),
		sram.ForwardEnergyMJ()+sram.BackwardEnergyMJ(nn.L4), "needs ~112MB on-die SRAM: not viable")

	fmt.Println(t.String())
}
