// Command dronerl-learner runs the distributed pipeline's central trainer:
// it listens for dronerl-actor connections, merges their experience streams
// into per-actor replay shards, trains the policy, broadcasts publishes to
// the fleet, and checkpoints durably so a crashed learner resumes exactly
// where it stopped.
//
// Usage:
//
//	dronerl-learner [-addr 127.0.0.1:9090] [-config L2|L3|L4|E2E]
//	                [-slots 2] [-steps 4000] [-train-every 4] [-sync-every 8]
//	                [-checkpoint learner.ckpt] [-checkpoint-every 32]
//	                [-model snapshot.gob] [-seed 1] [-idle 0]
//
// With -model the policy starts from that meta-model snapshot (as written
// by droneflight -save); without it a fresh NavNet is initialized from
// -seed. With -checkpoint, a usable checkpoint at that path is resumed
// automatically — delete the file to start over — and new checkpoints are
// written there atomically; each save is charged to the energy ledger as an
// STT-MRAM write. SIGINT/SIGTERM stops the run; with -checkpoint the next
// invocation resumes it.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dronerl/internal/dist"
	"dronerl/internal/mem"
	"dronerl/internal/nn"
	"dronerl/internal/rl"
	"dronerl/internal/transfer"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address for actor connections")
	cfgName := flag.String("config", "L3", "training topology: L2, L3, L4 or E2E")
	slots := flag.Int("slots", 2, "actor slots (one replay shard each)")
	steps := flag.Int("steps", 4000, "fleet env steps to train through")
	trainEvery := flag.Int("train-every", 4, "env steps per weight update")
	syncEvery := flag.Int("sync-every", 8, "weight updates per policy publish")
	ckptPath := flag.String("checkpoint", "", "resumable checkpoint file (resumed when present)")
	ckptEvery := flag.Int("checkpoint-every", 32, "weight updates per checkpoint save")
	model := flag.String("model", "", "start from this meta-model snapshot (default: random-init from -seed)")
	seed := flag.Int64("seed", 1, "weight init seed when no -model is given")
	idle := flag.Duration("idle", 0, "end the run after the whole fleet has been absent this long (0: wait forever)")
	flag.Parse()

	cfg, ok := pickConfig(*cfgName)
	if !ok {
		fmt.Fprintf(os.Stderr, "dronerl-learner: unknown config %q\n", *cfgName)
		os.Exit(2)
	}

	spec := nn.NavNetSpec()
	agent, err := buildAgent(spec, cfg, *model, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dronerl-learner:", err)
		os.Exit(2)
	}

	var resume *dist.Checkpoint
	if *ckptPath != "" {
		cp, err := dist.LoadCheckpoint(*ckptPath)
		switch {
		case err == nil:
			resume = cp
			fmt.Printf("dronerl-learner: resuming %s (env=%d train=%d actors=%d)\n",
				*ckptPath, cp.EnvSteps, cp.TrainSteps, len(cp.Slots))
		case os.IsNotExist(err):
			// Fresh run; the path is where checkpoints will go.
		case errors.Is(err, dist.ErrCheckpointCorrupt):
			fmt.Fprintf(os.Stderr, "dronerl-learner: %s is corrupt: %v (delete it to start over)\n", *ckptPath, err)
			os.Exit(1)
		default:
			fmt.Fprintln(os.Stderr, "dronerl-learner:", err)
			os.Exit(1)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dronerl-learner:", err)
		os.Exit(1)
	}

	ledger := mem.NewCompactLedger()
	tracker := rl.TrackerFor(*steps)
	learner, err := dist.NewLearner(dist.LearnerConfig{
		Agent: agent, Spec: spec, Cfg: cfg, Listener: ln,
		ActorSlots:      *slots,
		TotalSteps:      *steps,
		TrainEvery:      *trainEvery,
		SyncEvery:       *syncEvery,
		IdleTimeout:     *idle,
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		Resume:          resume,
		Ledger:          ledger,
		Tracker:         tracker,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dronerl-learner:", err)
		os.Exit(2)
	}
	fmt.Printf("dronerl-learner: listening on %s (config=%s slots=%d steps=%d)\n",
		ln.Addr(), cfg, *slots, *steps)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	st, err := learner.Run(ctx)
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "dronerl-learner:", err)
		os.Exit(1)
	}
	fmt.Printf("dronerl-learner: done in %v; env=%d train=%d publishes=%d checkpoints=%d "+
		"connects=%d resumes=%d disconnects=%d sfd=%.2f checkpoint_energy=%.3fmJ\n",
		time.Since(start).Round(time.Millisecond), st.EnvSteps, st.TrainSteps, st.Publishes,
		st.Checkpoints, st.Connects, st.Resumes, st.Disconnects,
		tracker.SafeFlightDistance(), ledger.TotalEnergyPJ()/1e9)
	if err := json.NewEncoder(os.Stdout).Encode(st); err != nil {
		fmt.Fprintln(os.Stderr, "dronerl-learner:", err)
		os.Exit(1)
	}
}

// buildAgent deploys the meta-model snapshot when given, or initializes
// fresh seeded weights.
func buildAgent(spec nn.ArchSpec, cfg nn.Config, model string, seed int64) (*rl.Agent, error) {
	opts := rl.Options{Seed: seed}
	if model == "" {
		net := spec.Build()
		net.Init(rand.New(rand.NewSource(seed)))
		return transfer.Deploy(nn.TakeSnapshot(net, spec.Name), spec, cfg, opts)
	}
	f, err := os.Open(model)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snap, err := nn.ReadSnapshot(f)
	if err != nil {
		return nil, err
	}
	return transfer.Deploy(snap, spec, cfg, opts)
}

func pickConfig(name string) (nn.Config, bool) {
	switch strings.ToUpper(name) {
	case "L2":
		return nn.L2, true
	case "L3":
		return nn.L3, true
	case "L4":
		return nn.L4, true
	case "E2E":
		return nn.E2E, true
	}
	return 0, false
}
