// Command dronerl-actor flies one remote actor of the distributed pipeline:
// it connects to a dronerl-learner, receives the policy and exploration
// schedule in the welcome, then steps its private world — streaming
// experience to the learner and adopting published policies at episode
// boundaries. The learner being unreachable never stops the flying:
// experience buffers locally and replays on reconnect, with exponential
// backoff between attempts.
//
// Usage:
//
//	dronerl-actor [-addr 127.0.0.1:9090] [-env indoor-apartment]
//	              [-steps 2000] [-seed 2] [-id 0] [-flush 8] [-buffer 4096]
//
// Pass -id with a previously assigned actor ID (printed at exit) to reclaim
// the same replay shard after a crash or restart; 0 asks the learner for a
// fresh slot.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dronerl/internal/dist"
	"dronerl/internal/env"
	"dronerl/internal/nn"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "learner address")
	envName := flag.String("env", "indoor-apartment", "scenario to fly (see droneflight -list)")
	steps := flag.Int("steps", 2000, "env steps to fly")
	seed := flag.Int64("seed", 2, "world + exploration seed")
	id := flag.Uint64("id", 0, "actor ID to reclaim (0: ask for a fresh slot)")
	flush := flag.Int("flush", 8, "transitions per experience frame")
	buffer := flag.Int("buffer", 4096, "local ring capacity while disconnected")
	flag.Parse()

	scenario, ok := env.LookupScenario(*envName)
	if !ok {
		fmt.Fprintf(os.Stderr, "dronerl-actor: unknown scenario %q (droneflight -list shows the catalog)\n", *envName)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fmt.Printf("dronerl-actor: flying %s for %d steps against %s\n", *envName, *steps, *addr)
	start := time.Now()
	st, err := dist.RunActor(ctx, dist.ActorConfig{
		Addr:       *addr,
		Spec:       nn.NavNetSpec(),
		World:      scenario.Build(*seed),
		Steps:      *steps,
		Seed:       *seed,
		ActorID:    *id,
		FlushEvery: *flush,
		BufferCap:  *buffer,
	})
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "dronerl-actor:", err)
		os.Exit(1)
	}
	fmt.Printf("dronerl-actor: done in %v; id=%d steps=%d sent=%d undelivered=%d dropped=%d connects=%d adoptions=%d\n",
		time.Since(start).Round(time.Millisecond), st.ActorID, st.Steps, st.Sent,
		st.Undelivered, st.Dropped, st.Connects, st.Adoptions)
	if err := json.NewEncoder(os.Stdout).Encode(st); err != nil {
		fmt.Fprintln(os.Stderr, "dronerl-actor:", err)
		os.Exit(1)
	}
}
