// Command dronerl-serve runs the policy-serving daemon: an HTTP front door
// that batches concurrent inference requests into single forward passes,
// applies backpressure when the admission queue fills, and hot-reloads
// POSTed policy snapshots with zero downtime.
//
// Usage:
//
//	dronerl-serve [-addr 127.0.0.1:8080] [-backend float|quant|systolic]
//	              [-workers 2] [-maxbatch 32] [-window 2ms] [-queue 256]
//	              [-model snapshot.gob] [-seed 1] [-pprof addr]
//
// With -model the daemon serves that snapshot (as written by droneflight
// -save or GET /v1/policy of another instance); without it a fresh NavNet is
// initialized from -seed — useful for load testing and smoke tests.
//
// Endpoints: POST /v1/act, POST+GET /v1/policy, GET /healthz, GET /statsz.
// SIGINT/SIGTERM drain in-flight requests, print a final stats summary and
// exit 0.
//
// -pprof mounts net/http/pprof on its own debug listener (e.g. -pprof
// 127.0.0.1:6060), kept off the serving port so profiling traffic never
// competes with inference admission and the profiler is never exposed on
// the serving address by accident. Off by default.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dronerl/internal/nn"
	"dronerl/internal/serve"

	// Linked for their backend registrations, so -backend can name the
	// quant and systolic substrates.
	_ "dronerl/internal/hw"
	_ "dronerl/internal/qnn"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	backend := flag.String("backend", "float", "inference backend: float, quant or systolic")
	workers := flag.Int("workers", 2, "inference workers (each owns a policy replica)")
	maxBatch := flag.Int("maxbatch", 32, "largest coalesced batch (1 = single-flight)")
	window := flag.Duration("window", 2*time.Millisecond, "how long to hold an under-filled batch open")
	queue := flag.Int("queue", 256, "admission queue depth; beyond it requests get 429")
	model := flag.String("model", "", "serve this snapshot file (default: random-init from -seed)")
	seed := flag.Int64("seed", 1, "weight init seed when no -model is given")
	pprofAddr := flag.String("pprof", "", "mount net/http/pprof on this separate debug listener (off when empty)")
	flag.Parse()

	snap, err := loadPolicy(*model, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dronerl-serve:", err)
		os.Exit(2)
	}

	s, err := serve.New(serve.Config{
		Addr:        *addr,
		Backend:     *backend,
		Workers:     *workers,
		MaxBatch:    *maxBatch,
		BatchWindow: *window,
		QueueDepth:  *queue,
		Snapshot:    snap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dronerl-serve:", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dronerl-serve:", err)
		os.Exit(2)
	}
	fmt.Printf("dronerl-serve: listening on http://%s (backend=%s workers=%d maxbatch=%d window=%v queue=%d)\n",
		ln.Addr(), *backend, *workers, *maxBatch, *window, *queue)

	if *pprofAddr != "" {
		dln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dronerl-serve: pprof listener:", err)
			os.Exit(2)
		}
		// A dedicated mux: the debug listener serves only the profiler, the
		// serving mux never learns the /debug/pprof/ routes.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("dronerl-serve: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				fmt.Fprintln(os.Stderr, "dronerl-serve: pprof:", err)
			}
		}()
		defer dln.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := s.Serve(ctx, ln); err != nil {
		fmt.Fprintln(os.Stderr, "dronerl-serve:", err)
		os.Exit(1)
	}

	st := s.Stats()
	fmt.Printf("dronerl-serve: drained; served=%d rejected=%d reloads=%d batches=%d mean_batch=%.2f p50=%.3fms p99=%.3fms energy=%.3fmJ\n",
		st.Served, st.Rejected, st.Reloads, st.Batches, st.MeanBatch, st.P50Ms, st.P99Ms, st.TotalEnergyMJ)
	if err := json.NewEncoder(os.Stdout).Encode(st); err != nil {
		fmt.Fprintln(os.Stderr, "dronerl-serve:", err)
		os.Exit(1)
	}
}

// loadPolicy reads the snapshot file, or fabricates a seeded random policy
// when no file is given.
func loadPolicy(path string, seed int64) (*nn.Snapshot, error) {
	if path == "" {
		spec := nn.NavNetSpec()
		net := spec.Build()
		net.Init(rand.New(rand.NewSource(seed)))
		return nn.TakeSnapshot(net, spec.Name), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return nn.ReadSnapshot(f)
}
