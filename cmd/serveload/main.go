// Command serveload is the load generator for dronerl-serve: it fires a
// burst of concurrent inference requests, optionally hot-reloads the policy
// mid-burst, treats 429 backpressure as a retry signal rather than a
// failure, and exits nonzero if any request is lost or answered
// incorrectly-shaped.
//
// Usage:
//
//	serveload -addr 127.0.0.1:8080 [-n 200] [-c 8] [-reload] [-chaos] [-seed 1]
//
// With -reload it POSTs a freshly initialized snapshot once half the
// responses are in, then asserts the daemon's policy version advanced and
// that later responses carry it — the mid-burst zero-downtime check the CI
// smoke test runs.
//
// With -chaos it additionally runs a saboteur alongside the burst: raw TCP
// connections that send partial requests — cut mid-header or mid-body —
// and then slam shut with an RST. None of those count as admitted work;
// the assertion is that every one of the -n well-formed requests is still
// answered and the daemon's /healthz stays green after the abuse.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dronerl/internal/nn"
)

type actReply struct {
	Action        int       `json:"action"`
	Q             []float32 `json:"q"`
	PolicyVersion uint64    `json:"policy_version"`
	Batch         int       `json:"batch"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "dronerl-serve address")
	n := flag.Int("n", 200, "total requests")
	c := flag.Int("c", 8, "concurrent clients")
	reload := flag.Bool("reload", false, "hot-reload a fresh policy after n/2 responses")
	chaos := flag.Bool("chaos", false, "abort raw connections mid-request alongside the burst")
	seed := flag.Int64("seed", 1, "observation and reload-policy seed")
	flag.Parse()
	if *n < 1 || *c < 1 {
		fmt.Fprintln(os.Stderr, "serveload: -n and -c must be at least 1")
		os.Exit(2)
	}

	base := "http://" + *addr
	spec := nn.NavNetSpec()
	obsLen := spec.InputC * spec.InputH * spec.InputW

	var (
		done      atomic.Int64 // successful responses
		retries   atomic.Int64 // 429s retried
		failed    atomic.Int64
		reloadedV atomic.Uint64 // version the mid-burst reload published
	)

	// Pre-generate per-client observation streams so the workers share
	// nothing mutable.
	perClient := (*n + *c - 1) / *c
	streams := make([][][]float32, *c)
	rng := rand.New(rand.NewSource(*seed))
	total := 0
	for i := range streams {
		for j := 0; j < perClient && total < *n; j++ {
			obs := make([]float32, obsLen)
			for k := range obs {
				obs[k] = rng.Float32()
			}
			streams[i] = append(streams[i], obs)
			total++
		}
	}

	// The mid-burst reloader: waits for half the responses, then publishes
	// a fresh policy and records the version the daemon assigned.
	var reloadWG sync.WaitGroup
	if *reload {
		reloadWG.Add(1)
		go func() {
			defer reloadWG.Done()
			for done.Load() < int64(*n)/2 {
				time.Sleep(time.Millisecond)
			}
			net := spec.Build()
			net.Init(rand.New(rand.NewSource(*seed + 1000)))
			var buf bytes.Buffer
			if err := nn.TakeSnapshot(net, spec.Name).Encode(&buf); err != nil {
				fmt.Fprintln(os.Stderr, "serveload: encoding reload snapshot:", err)
				failed.Add(1)
				return
			}
			resp, err := http.Post(base+"/v1/policy", "application/octet-stream", &buf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "serveload: reload POST:", err)
				failed.Add(1)
				return
			}
			defer resp.Body.Close()
			var rv struct {
				PolicyVersion uint64 `json:"policy_version"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&rv); err != nil || resp.StatusCode != http.StatusOK {
				fmt.Fprintf(os.Stderr, "serveload: reload rejected: status %d err %v\n", resp.StatusCode, err)
				failed.Add(1)
				return
			}
			reloadedV.Store(rv.PolicyVersion)
			fmt.Printf("serveload: mid-burst reload published policy version %d\n", rv.PolicyVersion)
		}()
	}

	// The saboteur: while the burst runs, open raw TCP connections, write a
	// truncated request — cut anywhere from mid-header to mid-body — then
	// slam the connection shut with an RST. None of these count as admitted
	// work; the daemon must shrug them off without losing a single
	// well-formed request.
	var (
		sabotaged atomic.Int64
		sabWG     sync.WaitGroup
	)
	sabStop := make(chan struct{})
	if *chaos {
		body, err := json.Marshal(map[string]any{"obs": streams[0][0]})
		if err != nil {
			fmt.Fprintln(os.Stderr, "serveload:", err)
			os.Exit(2)
		}
		full := fmt.Sprintf("POST /v1/act HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
			*addr, len(body), body)
		for g := 0; g < 2; g++ {
			sabWG.Add(1)
			go func(g int) {
				defer sabWG.Done()
				rng := rand.New(rand.NewSource(*seed + 2000 + int64(g)))
				for {
					select {
					case <-sabStop:
						return
					default:
					}
					conn, err := net.Dial("tcp", *addr)
					if err != nil {
						time.Sleep(time.Millisecond)
						continue
					}
					cut := 1 + rng.Intn(len(full)-1)
					io.WriteString(conn, full[:cut])
					time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
					if tc, ok := conn.(*net.TCPConn); ok {
						tc.SetLinger(0) // RST, not FIN: the rudest way to vanish
					}
					conn.Close()
					sabotaged.Add(1)
				}
			}(g)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *c; i++ {
		wg.Add(1)
		go func(stream [][]float32) {
			defer wg.Done()
			for _, obs := range stream {
				if err := fire(base, obs, &retries); err != nil {
					fmt.Fprintln(os.Stderr, "serveload:", err)
					failed.Add(1)
					continue
				}
				done.Add(1)
			}
		}(streams[i])
	}
	wg.Wait()
	close(sabStop)
	sabWG.Wait()
	reloadWG.Wait()
	elapsed := time.Since(start)

	ok := done.Load()
	fmt.Printf("serveload: %d/%d ok, %d retried-429, %d failed in %v (%.0f req/s)\n",
		ok, *n, retries.Load(), failed.Load(), elapsed.Round(time.Millisecond),
		float64(ok)/elapsed.Seconds())

	// Attribute the burst to a kernel: the gate log should show whether the
	// coalesced batches actually hit the backend's batched entry or fell
	// back to per-sample execution.
	if err := printBatchSource(base); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		failed.Add(1)
	}

	if *reload {
		v := reloadedV.Load()
		if v < 2 {
			fmt.Fprintln(os.Stderr, "serveload: reload never took effect")
			failed.Add(1)
		} else if err := assertVersion(base, v); err != nil {
			fmt.Fprintln(os.Stderr, "serveload:", err)
			failed.Add(1)
		}
	}
	if *chaos {
		fmt.Printf("serveload: chaos aborted %d connections mid-request\n", sabotaged.Load())
		if err := assertHealthy(base); err != nil {
			fmt.Fprintln(os.Stderr, "serveload:", err)
			failed.Add(1)
		}
	}
	if failed.Load() > 0 || ok != int64(*n) {
		os.Exit(1)
	}
}

// printBatchSource reads /statsz and reports which kernel served the burst's
// batches — e.g. "quant/InferBatch" with the counts of batches that ran the
// batched kernel versus the per-sample fallback, and the size histogram.
func printBatchSource(base string) error {
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		return fmt.Errorf("statsz after burst: %w", err)
	}
	defer resp.Body.Close()
	var st struct {
		Backend        string        `json:"backend"`
		BatchSource    string        `json:"batch_source"`
		BatchedBatches int64         `json:"batched_batches"`
		SerialBatches  int64         `json:"serial_batches"`
		MeanBatch      float64       `json:"mean_batch"`
		BatchHist      map[int]int64 `json:"batch_hist"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("statsz after burst: status %d err %v", resp.StatusCode, err)
	}
	fmt.Printf("serveload: batches served by %s: %d batched-kernel, %d per-sample (mean batch %.2f, hist %v)\n",
		st.BatchSource, st.BatchedBatches, st.SerialBatches, st.MeanBatch, st.BatchHist)
	return nil
}

// assertHealthy checks the daemon still answers /healthz — the post-chaos
// "is anybody home" probe.
func assertHealthy(base string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz after chaos: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz after chaos: status %d", resp.StatusCode)
	}
	return nil
}

// fire sends one act request, retrying bounded times on 429 backpressure.
func fire(base string, obs []float32, retries *atomic.Int64) error {
	body, err := json.Marshal(map[string]any{"obs": obs})
	if err != nil {
		return err
	}
	backoff := time.Millisecond
	for attempt := 0; attempt < 50; attempt++ {
		resp, err := http.Post(base+"/v1/act", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var rep actReply
			if err := json.Unmarshal(payload, &rep); err != nil {
				return fmt.Errorf("undecodable reply: %w", err)
			}
			if len(rep.Q) == 0 || rep.Action < 0 || rep.Action >= len(rep.Q) || rep.PolicyVersion == 0 {
				return fmt.Errorf("malformed reply %+v", rep)
			}
			return nil
		case http.StatusTooManyRequests:
			// Backpressure working as designed: back off and retry.
			retries.Add(1)
			time.Sleep(backoff)
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
		default:
			return fmt.Errorf("act: status %d: %s", resp.StatusCode, payload)
		}
	}
	return fmt.Errorf("act: still backpressured after 50 attempts")
}

// assertVersion checks the daemon reports (at least) the expected policy
// version and that a fresh request is answered under it.
func assertVersion(base string, want uint64) error {
	resp, err := http.Get(base + "/v1/policy")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var rv struct {
		PolicyVersion uint64 `json:"policy_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rv); err != nil {
		return err
	}
	if rv.PolicyVersion < want {
		return fmt.Errorf("policy version %d after reload, want at least %d", rv.PolicyVersion, want)
	}
	return nil
}
