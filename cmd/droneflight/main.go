// Command droneflight runs a single transfer-learning + online-RL flight
// experiment in one scenario and reports the learning curves and safe
// flight distance.
//
// Usage:
//
//	droneflight [-env <scenario>] [-config L2|L3|L4|E2E]
//	            [-meta 1000] [-online 800] [-eval 600] [-seed 1] [-map]
//	droneflight -curriculum [-env <scenario>] ...
//	droneflight -swarm N [-env <scenario>] ...
//	droneflight -list
//
// The -env flag names any scenario from the catalog (droneflight -list
// prints it); the short aliases apartment, house, forest and town select
// the paper's four test environments, and gen-* names select procedurally
// generated scenario families. -curriculum trains through the staged
// ladder matching the scenario's kind instead of a single world, and
// -swarm N flies N policy-sharing drone clones after online adaptation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"dronerl/internal/core"
	"dronerl/internal/env"
	"dronerl/internal/metrics"
	"dronerl/internal/nn"
	"dronerl/internal/report"
	"dronerl/internal/rl"
	"dronerl/internal/scen"
	"dronerl/internal/transfer"

	// Linked for their backend registrations, so -backend can name the
	// quant and systolic substrates.
	_ "dronerl/internal/hw"
	_ "dronerl/internal/qnn"
)

// aliases maps the historical short names (with their historical seed
// offsets) to catalog scenarios.
var aliases = map[string]string{
	"apartment": "indoor-apartment",
	"house":     "indoor-house",
	"forest":    "outdoor-forest",
	"town":      "outdoor-town",
}

// aliasSeedOffset reproduces the pre-registry seed derivation for the four
// short aliases, so `droneflight -env apartment` flies the exact world it
// always has.
var aliasSeedOffset = map[string]int64{
	"indoor-apartment": 1, "indoor-house": 2, "outdoor-forest": 3, "outdoor-town": 4,
}

func main() {
	envName := flag.String("env", "apartment", "scenario name (see -list) or a short alias")
	cfgName := flag.String("config", "L3", "L2, L3, L4 or E2E")
	metaIters := flag.Int("meta", 1000, "meta-environment training iterations")
	onlineIters := flag.Int("online", 800, "online RL iterations in the test environment")
	evalSteps := flag.Int("eval", 600, "greedy evaluation steps")
	seed := flag.Int64("seed", 1, "experiment seed")
	backend := flag.String("backend", "", "inference backend for the greedy evaluation: "+
		strings.Join(nn.BackendNames(), ", ")+" (default: the direct float path)")
	trainBackend := flag.String("train-backend", "", "trainable backend for the online phase "+
		"(quant-train runs every TD update in 16-bit fixed point with stochastic rounding; "+
		"default: the float training path)")
	actors := flag.Int("actors", 1, "concurrent actors for the online-learning phase "+
		"(1 = the deterministic serial schedule)")
	curriculum := flag.Bool("curriculum", false, "train through the staged curriculum ladder "+
		"matching the scenario's kind instead of a single world")
	swarm := flag.Int("swarm", 0, "fly N policy-sharing drone clones after online adaptation "+
		"(0 = single-drone experiment)")
	showMap := flag.Bool("map", false, "print the environment map")
	list := flag.Bool("list", false, "list the scenario catalog and exit")
	saveModel := flag.String("save", "", "write the meta-model snapshot to this file after meta-training")
	loadModel := flag.String("load", "", "skip meta-training and load a snapshot from this file")
	flag.Parse()

	// Validate name-shaped flags before any training runs, so a typo fails
	// in milliseconds instead of after minutes of meta-training.
	if *backend != "" && !nn.HasBackend(*backend) {
		fmt.Fprintf(os.Stderr, "unknown backend %q: registered backends are %s\n",
			*backend, strings.Join(nn.BackendNames(), ", "))
		os.Exit(2)
	}
	if *trainBackend != "" && !nn.HasBackend(*trainBackend) {
		fmt.Fprintf(os.Stderr, "unknown train backend %q: registered backends are %s\n",
			*trainBackend, strings.Join(nn.BackendNames(), ", "))
		os.Exit(2)
	}
	if *actors < 1 {
		fmt.Fprintf(os.Stderr, "-actors %d: need at least one actor\n", *actors)
		os.Exit(2)
	}
	if *swarm < 0 {
		fmt.Fprintf(os.Stderr, "-swarm %d: need at least one drone\n", *swarm)
		os.Exit(2)
	}
	if *curriculum && *swarm > 0 {
		fmt.Fprintln(os.Stderr, "-curriculum and -swarm are separate modes; pick one")
		os.Exit(2)
	}

	if *list {
		t := report.New("scenario catalog", "name", "kind", "description")
		for _, s := range env.Scenarios() {
			t.Add(s.Name, s.Kind, s.Description)
		}
		fmt.Println(t.String())
		return
	}

	key := resolveName(*envName)
	world := pickEnv(*envName, *seed)
	if world == nil {
		fmt.Fprintf(os.Stderr, "unknown scenario %q: registered scenarios are %s\n",
			*envName, strings.Join(env.ScenarioNames(), ", "))
		os.Exit(2)
	}
	cfg, ok := pickConfig(*cfgName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *cfgName)
		os.Exit(2)
	}
	if *showMap {
		fmt.Println(world.Render(72, 24))
	}

	if *curriculum {
		runCurriculum(world.Kind, cfg, *seed, *metaIters, *onlineIters)
		return
	}
	if *swarm > 0 {
		runSwarm(key, *swarm, cfg, *seed, *metaIters, *onlineIters, *evalSteps)
		return
	}

	spec := nn.NavNetSpec()
	var snap *nn.Snapshot
	if *loadModel != "" {
		f, err := os.Open(*loadModel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		snap, err = nn.ReadSnapshot(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded meta-model %q from %s\n", snap.Arch, *loadModel)
	} else {
		meta := env.MetaFor(world, *seed+1000)
		fmt.Printf("meta-training E2E on %q for %d iterations...\n", meta.Name, *metaIters)
		var metaTracker *metrics.FlightTracker
		snap, metaTracker = transfer.MetaTrain(meta, spec, *metaIters, rl.Options{
			Seed: *seed, BatchSize: 4, EpsDecaySteps: *metaIters / 2,
		})
		fmt.Printf("meta model: cumulative reward %.3f, SFD %.1f m over %d crashes\n",
			metaTracker.CumulativeReward(), metaTracker.SafeFlightDistance(), metaTracker.Crashes())
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := snap.Encode(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("meta-model written to %s\n", *saveModel)
	}

	fmt.Printf("deploying to %q under %v (%d/%d trainable weights) and learning online...\n",
		world.Name, cfg, spec.TrainedWeights(cfg), spec.TotalWeights())
	opts := rl.Options{
		Seed: *seed + 1, BatchSize: 4, EpsStart: 0.5, EpsDecaySteps: *onlineIters / 2,
	}
	var extra []rl.Option
	if *backend != "" {
		extra = append(extra, rl.WithEvalBackend(*backend))
	}
	if *trainBackend != "" {
		extra = append(extra, rl.WithTrainBackend(*trainBackend))
	}
	if *actors > 1 {
		extra = append(extra, rl.WithActors(*actors))
	}
	if len(extra) > 0 {
		withExtra, err := rl.NewOptions(extra...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts = opts.Merge(withExtra)
	}
	res, err := transfer.RunOnline(snap, world, spec, cfg, *onlineIters, *evalSteps, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	t := report.New("online learning ("+world.Name+", "+cfg.String()+")", "metric", "value")
	t.Add("cumulative reward", report.Num(res.Training.CumulativeReward()))
	t.Add("reward curve", report.Sparkline(res.Training.RewardSeries(), 48))
	t.Add("return", report.Num(res.Training.Return()))
	t.Add("return curve", report.Sparkline(res.Training.ReturnSeries(), 48))
	t.Add("training crashes", fmt.Sprint(res.Training.Crashes()))
	if res.Actors > 1 {
		t.Add("actors", fmt.Sprint(res.Actors))
		t.Add("policy publishes", fmt.Sprint(res.Publishes))
		t.Add("publish energy (mJ)", report.Num(res.PublishMJ))
	}
	if res.TrainBackend != "" {
		t.Add("train backend", res.TrainBackend)
		t.Add("train energy (mJ)", report.Num(res.TrainCost.EnergyMJ))
		t.Add("train latency (ms)", report.Num(res.TrainCost.LatencyMS))
	}
	t.Add("eval SFD (m)", report.Num(res.Eval.SafeFlightDistance()))
	t.Add("eval crashes", fmt.Sprint(res.Eval.Crashes()))
	if res.Backend != "" {
		t.Add("eval backend", res.Backend)
		if res.EvalCost.Inferences > 0 {
			t.Add("eval energy (mJ)", report.Num(res.EvalCost.EnergyMJ))
			t.Add("eval latency (ms)", report.Num(res.EvalCost.LatencyMS))
		}
	}
	fmt.Println(t.String())
}

// runCurriculum trains through the staged ladder for the scenario's kind
// and prints the promotion trace.
func runCurriculum(kind string, cfg nn.Config, seed int64, metaIters, onlineIters int) {
	c, err := scen.NewCurriculum(scen.DefaultLadder(kind), cfg, seed, metaIters, onlineIters)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("curriculum: %d %s stages under %v (meta %d, per-stage %d iterations)\n",
		len(c.Stages()), kind, cfg, metaIters, onlineIters)
	if err := core.Run(context.Background(), c, core.WithProgress(func(ev core.Event) {
		fmt.Printf("  [%s] %s: reward %.3f after %d iterations\n",
			ev.Phase, ev.Env, ev.Reward, ev.Iteration)
	})); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep := c.Report()
	t := report.New("curriculum ("+kind+", "+cfg.String()+")",
		"stage", "attempt", "iters", "reward", "SFD (m)", "promoted")
	for _, rec := range rep.Trace {
		t.Add(rec.Stage, fmt.Sprint(rec.Attempt+1), fmt.Sprint(rec.Iters),
			report.Num(rec.Reward), report.Num(rec.SFD), fmt.Sprint(rec.Promoted))
	}
	fmt.Println(t.String())
	if !rep.Completed {
		fmt.Printf("curriculum stopped at stage %q\n", rep.FailedStage)
		os.Exit(1)
	}
	fmt.Println("curriculum completed: every stage promoted")
}

// runSwarm meta-trains and adapts one policy in the scenario, then flies a
// fleet of clones sharing it and prints the per-drone mission stats.
func runSwarm(scenario string, drones int, cfg nn.Config, seed int64,
	metaIters, onlineIters, missionSteps int) {

	e, err := scen.NewSwarmExperiment(scenario, drones, cfg, seed, metaIters, onlineIters, missionSteps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("swarm: %d drones in %q under %v (meta %d, online %d, mission %d steps)\n",
		drones, scenario, cfg, metaIters, onlineIters, missionSteps)
	if err := core.Run(context.Background(), e, core.WithProgress(func(ev core.Event) {
		fmt.Printf("  [%s] %s: reward %.3f after %d iterations\n",
			ev.Phase, ev.Env, ev.Reward, ev.Iteration)
	})); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep := e.Report()
	t := report.New("swarm mission ("+rep.Env+", "+cfg.String()+")",
		"drone", "steps", "crashes", "mean reward", "distance (m)", "SFD (m)")
	for _, d := range rep.Drones {
		t.Add(fmt.Sprint(d.Drone), fmt.Sprint(d.Steps), fmt.Sprint(d.Crashes),
			report.Num(d.MeanReward), report.Num(d.Distance), report.Num(d.SFD))
	}
	t.Add("fleet", fmt.Sprint(rep.TotalSteps), fmt.Sprint(rep.TotalCrashes),
		report.Num(rep.MeanReward), report.Num(rep.TotalDistance), report.Num(rep.MeanSFD))
	fmt.Println(t.String())
}

// resolveName lowers a scenario name and expands the historical short
// aliases to their catalog keys.
func resolveName(name string) string {
	key := strings.ToLower(name)
	if full, ok := aliases[key]; ok {
		key = full
	}
	return key
}

// pickEnv resolves a scenario by catalog name or short alias and builds its
// world. Alias lookups keep the historical per-world seed offsets.
func pickEnv(name string, seed int64) *env.World {
	key := resolveName(name)
	s, ok := env.LookupScenario(key)
	if !ok {
		return nil
	}
	return s.Build(seed + aliasSeedOffset[key])
}

func pickConfig(name string) (nn.Config, bool) {
	switch strings.ToUpper(name) {
	case "L2":
		return nn.L2, true
	case "L3":
		return nn.L3, true
	case "L4":
		return nn.L4, true
	case "E2E":
		return nn.E2E, true
	}
	return 0, false
}
