// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so CI can publish benchmark numbers as a machine-readable
// artifact (BENCH_pr4.json) and the performance trajectory of the hot paths
// — TrainStep, conv forward/backward — can be tracked across PRs.
//
// Usage:
//
//	go test -run '^$' -bench TrainStep -benchmem | benchjson -o BENCH_pr4.json
//	... | benchjson -o BENCH_pr4.json -baseline BENCH_pr2.json \
//	      -gate 'ConvForward|GEMM|TrainStep' -maxregress 15
//
// Standard columns (iterations, ns/op, B/op, allocs/op) become fields;
// any custom metrics reported with b.ReportMetric (gflops, fwd-ms, ...)
// land in the "metrics" map.
//
// With -baseline the command additionally acts as a regression gate: every
// benchmark whose name matches -gate is compared against the same-named
// entry of the baseline document, a comparison table is printed, and the
// command exits nonzero if any gated benchmark slowed down by more than
// -maxregress percent. Gated benchmarks absent from the baseline are
// reported but do not fail the gate (they are new coverage, not
// regressions). Baselines are machine-specific: compare runs from the same
// runner class (CI pins GOMAXPROCS=1 for stability).
//
// Gated benchmarks that also match -noisy are held to the wider
// -maxregress-noisy band instead: concurrency workloads (closed-loop
// serving QPS, actor-fleet throughput) are scheduler-bound and swing far
// more run-to-run on shared runners than the pinned single-thread hot
// paths, and a gate that flakes gets deleted — a wide honest band beats a
// tight ignored one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON to gate regressions against")
	gate := flag.String("gate", "ConvForward|GEMM|TrainStep", "regexp of benchmark names the gate checks")
	maxRegress := flag.Float64("maxregress", 15, "fail if a gated benchmark slows down by more than this percent")
	noisy := flag.String("noisy", "", "regexp of gated benchmarks held to -maxregress-noisy instead (scheduler-bound workloads)")
	noisyRegress := flag.Float64("maxregress-noisy", 40, "regression budget for -noisy benchmarks, percent")
	flag.Parse()

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}

	if *baseline != "" {
		if !gateAgainstBaseline(rep, *baseline, gateSpec{
			Pattern:  *gate,
			MaxPct:   *maxRegress,
			Noisy:    *noisy,
			NoisyPct: *noisyRegress,
		}, os.Stderr) {
			os.Exit(1)
		}
	}
}

// gateSpec is the regression-gate configuration: which benchmarks are
// checked, and how much slowdown each class tolerates.
type gateSpec struct {
	Pattern  string  // gated benchmark names
	MaxPct   float64 // budget for gated benchmarks
	Noisy    string  // subset of gated names held to NoisyPct instead ("" = none)
	NoisyPct float64
}

// gateAgainstBaseline compares the gated benchmarks of rep against the
// committed baseline document and reports whether the gate passes.
func gateAgainstBaseline(rep Report, baselinePath string, spec gateSpec, w io.Writer) bool {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(w, "benchjson: baseline:", err)
		return false
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(w, "benchjson: baseline:", err)
		return false
	}
	gateRE, err := regexp.Compile(spec.Pattern)
	if err != nil {
		fmt.Fprintln(w, "benchjson: gate pattern:", err)
		return false
	}
	var noisyRE *regexp.Regexp
	if spec.Noisy != "" {
		if noisyRE, err = regexp.Compile(spec.Noisy); err != nil {
			fmt.Fprintln(w, "benchjson: noisy pattern:", err)
			return false
		}
	}
	baseNs := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseNs[b.Name] = b.NsPerOp
	}

	fmt.Fprintf(w, "benchjson: gating %q against %s (max +%.0f%%",
		spec.Pattern, baselinePath, spec.MaxPct)
	if noisyRE != nil {
		fmt.Fprintf(w, "; %q +%.0f%%", spec.Noisy, spec.NoisyPct)
	}
	fmt.Fprintln(w, ")")
	ok := true
	var offenders []string
	gated := 0
	fresh := make(map[string]bool, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		fresh[b.Name] = true
		if !gateRE.MatchString(b.Name) {
			continue
		}
		gated++
		old, have := baseNs[b.Name]
		if !have {
			fmt.Fprintf(w, "  NEW   %-40s %12.0f ns/op (no baseline entry)\n", b.Name, b.NsPerOp)
			continue
		}
		if old <= 0 {
			continue
		}
		delta := 100 * (b.NsPerOp - old) / old
		budget := spec.MaxPct
		label := ""
		if noisyRE != nil && noisyRE.MatchString(b.Name) {
			budget, label = spec.NoisyPct, " [noisy]"
		}
		verdict := "ok"
		if delta > budget {
			verdict = "FAIL"
			ok = false
			offenders = append(offenders, fmt.Sprintf("%s %.0f -> %.0f ns/op (%+.1f%%, budget +%.0f%%)",
				b.Name, old, b.NsPerOp, delta, budget))
		}
		fmt.Fprintf(w, "  %-5s %-40s %12.0f -> %12.0f ns/op (%+.1f%%, budget +%.0f%%)%s\n",
			verdict, b.Name, old, b.NsPerOp, delta, budget, label)
	}
	// A gated baseline entry that vanished from the fresh run means the gate
	// is no longer checking it — a renamed or deleted benchmark would
	// otherwise silently shrink the gate's coverage. Fail with the missing
	// names rather than letting a zero-value comparison (or no comparison at
	// all) pass.
	missing := 0
	for _, b := range base.Benchmarks {
		if gateRE.MatchString(b.Name) && !fresh[b.Name] {
			fmt.Fprintf(w, "  MISS  %-40s gated in the baseline but absent from this run\n", b.Name)
			missing++
		}
	}
	if missing > 0 {
		fmt.Fprintf(w, "benchjson: %d gated benchmark(s) missing from the fresh run — "+
			"if the benchmark was renamed, update the baseline (%s) to match\n", missing, baselinePath)
		ok = false
	}
	if gated == 0 {
		fmt.Fprintln(w, "benchjson: no benchmark on stdin matches the gate pattern")
		return false
	}
	// Independent failure modes get independent summaries: a run can both
	// regress a benchmark and lose one. The summary names every offender
	// with its baseline-vs-fresh delta, so the CI log's last lines say what
	// regressed and by how much without scrolling back through the table.
	if len(offenders) > 0 {
		fmt.Fprintf(w, "benchjson: REGRESSION — %d gated benchmark(s) past budget: %s\n",
			len(offenders), strings.Join(offenders, "; "))
	}
	return ok
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkTrainStepBatched   15   4586154 ns/op   0 B/op   0 allocs/op
//
// The name keeps any sub-benchmark path but drops the trailing -GOMAXPROCS
// suffix the testing package appends.
func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			v := int64(val)
			b.BytesPerOp = &v
		case "allocs/op":
			v := int64(val)
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}
