package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, rep Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinBudget(t *testing.T) {
	base := writeBaseline(t, Report{Benchmarks: []Bench{
		{Name: "TrainStepBatched", NsPerOp: 1000},
	}})
	rep := Report{Benchmarks: []Bench{{Name: "TrainStepBatched", NsPerOp: 1100}}}
	if !gateAgainstBaseline(rep, base, gateSpec{Pattern: "TrainStep", MaxPct: 15}, io.Discard) {
		t.Error("a +10% drift inside a 15% budget must pass the gate")
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, Report{Benchmarks: []Bench{
		{Name: "TrainStepBatched", NsPerOp: 1000},
	}})
	rep := Report{Benchmarks: []Bench{{Name: "TrainStepBatched", NsPerOp: 1300}}}
	if gateAgainstBaseline(rep, base, gateSpec{Pattern: "TrainStep", MaxPct: 15}, io.Discard) {
		t.Error("a +30% regression must fail a 15% gate")
	}
}

// TestGateFailsOnMissingGatedBenchmark pins the fixed failure mode: a gated
// benchmark present in the baseline but absent from the fresh run (renamed
// or deleted) must fail the gate with an explicit message, not silently
// shrink the gate's coverage.
func TestGateFailsOnMissingGatedBenchmark(t *testing.T) {
	base := writeBaseline(t, Report{Benchmarks: []Bench{
		{Name: "TrainStepBatched", NsPerOp: 1000},
		{Name: "ConvForwardBatchGEMM", NsPerOp: 2000},
	}})
	rep := Report{Benchmarks: []Bench{
		// ConvForwardBatchGEMM is gone from the fresh run.
		{Name: "TrainStepBatched", NsPerOp: 1000},
	}}
	if gateAgainstBaseline(rep, base, gateSpec{Pattern: "ConvForward|TrainStep", MaxPct: 15}, io.Discard) {
		t.Error("a gated benchmark missing from the fresh run must fail the gate")
	}
}

func TestGateNewBenchmarkDoesNotFail(t *testing.T) {
	base := writeBaseline(t, Report{Benchmarks: []Bench{
		{Name: "TrainStepBatched", NsPerOp: 1000},
	}})
	rep := Report{Benchmarks: []Bench{
		{Name: "TrainStepBatched", NsPerOp: 1000},
		{Name: "TrainStepTail", NsPerOp: 123}, // new coverage, no baseline entry
	}}
	if !gateAgainstBaseline(rep, base, gateSpec{Pattern: "TrainStep", MaxPct: 15}, io.Discard) {
		t.Error("new benchmarks without baseline entries are not regressions")
	}
}

// TestGateNoisyBand pins the two-tier budget: a benchmark matching the
// noisy pattern is held to the wider band, while the same drift on a
// non-noisy gated benchmark still fails the tight band.
func TestGateNoisyBand(t *testing.T) {
	base := writeBaseline(t, Report{Benchmarks: []Bench{
		{Name: "TrainStepBatched", NsPerOp: 1000},
		{Name: "ServeQPSQuantBatched", NsPerOp: 1000},
	}})
	spec := gateSpec{Pattern: "TrainStep|ServeQPS", MaxPct: 15, Noisy: "ServeQPS", NoisyPct: 40}

	rep := Report{Benchmarks: []Bench{
		{Name: "TrainStepBatched", NsPerOp: 1000},
		{Name: "ServeQPSQuantBatched", NsPerOp: 1300}, // +30%: inside the noisy band
	}}
	if !gateAgainstBaseline(rep, base, spec, io.Discard) {
		t.Error("+30% on a noisy benchmark must pass a 40% noisy band")
	}

	rep.Benchmarks[1].NsPerOp = 1500 // +50%: past even the noisy band
	if gateAgainstBaseline(rep, base, spec, io.Discard) {
		t.Error("+50% on a noisy benchmark must fail a 40% noisy band")
	}

	rep.Benchmarks[1].NsPerOp = 1000
	rep.Benchmarks[0].NsPerOp = 1300 // +30% on the tight band
	if gateAgainstBaseline(rep, base, spec, io.Discard) {
		t.Error("the noisy band must not widen the budget of non-noisy benchmarks")
	}
}

// TestGateFailureMessageNamesOffender pins the failure-message contract:
// the REGRESSION summary must name every offending benchmark with its
// baseline and fresh ns/op and the delta, so the tail of a CI log says what
// regressed without scrolling back through the comparison table.
func TestGateFailureMessageNamesOffender(t *testing.T) {
	base := writeBaseline(t, Report{Benchmarks: []Bench{
		{Name: "TrainStepBatched", NsPerOp: 1000},
		{Name: "QuantTrainStep", NsPerOp: 2000},
	}})
	rep := Report{Benchmarks: []Bench{
		{Name: "TrainStepBatched", NsPerOp: 1300}, // +30% past a 15% budget
		{Name: "QuantTrainStep", NsPerOp: 2100},   // +5%: fine
	}}
	var buf bytes.Buffer
	if gateAgainstBaseline(rep, base, gateSpec{Pattern: "TrainStep", MaxPct: 15}, &buf) {
		t.Fatal("a +30% regression must fail a 15% gate")
	}
	out := buf.String()
	summary := out[strings.Index(out, "REGRESSION"):]
	for _, want := range []string{"TrainStepBatched", "1000", "1300", "+30.0%", "budget +15%"} {
		if !strings.Contains(summary, want) {
			t.Errorf("failure summary lacks %q:\n%s", want, summary)
		}
	}
	if strings.Contains(summary, "QuantTrainStep") {
		t.Errorf("failure summary names a benchmark inside budget:\n%s", summary)
	}
}

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkTrainStepBatched-8   15   4586154 ns/op   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "TrainStepBatched" || b.Iterations != 15 || b.NsPerOp != 4586154 {
		t.Errorf("parsed %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 0 || b.AllocsPerOp == nil || *b.AllocsPerOp != 0 {
		t.Errorf("memory columns parsed wrong: %+v", b)
	}
	if _, ok := parseBenchLine("not a benchmark line"); ok {
		t.Error("junk parsed as a benchmark")
	}
}
