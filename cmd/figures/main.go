// Command figures regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	figures [-artifact all|fig1|fig3|fig4|fig5|fig9|fig10|fig11|fig12|fig13|table1] [-scale quick|full]
//
// Hardware-side artifacts are analytical and instant; fig9/fig10/fig11
// run the flight simulator (seconds at -scale quick, ~2 minutes at full).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"dronerl/internal/core"
	"dronerl/internal/env"
	"dronerl/internal/mem"
	"dronerl/internal/nn"
	"dronerl/internal/report"
)

func main() {
	artifact := flag.String("artifact", "all", "which artifact to regenerate")
	scaleFlag := flag.String("scale", "quick", "flight experiment scale: quick or full")
	csvDir := flag.String("csv", "", "also write machine-readable CSVs for the hardware artifacts into this directory")
	progress := flag.Bool("progress", false, "stream per-run progress of the flight experiment to stderr")
	flag.Parse()

	scale := core.QuickScale()
	if *scaleFlag == "full" {
		scale = core.FullScale()
	}

	needsFlight := map[string]bool{"all": true, "fig10": true, "fig11": true}
	var flight *core.FlightReport
	if needsFlight[*artifact] {
		fmt.Fprintf(os.Stderr, "running flight experiment (%d meta + 4x4x%d online iterations)...\n",
			scale.MetaIters, scale.OnlineIters)
		// Ctrl-C cancels cleanly at the next run boundary instead of
		// killing the process mid-write.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		exp, err := core.NewFlightExperiment(scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flight experiment failed:", err)
			os.Exit(1)
		}
		var runOpts []core.RunOption
		if *progress {
			runOpts = append(runOpts, core.WithProgress(func(ev core.Event) {
				fmt.Fprintln(os.Stderr, ev)
			}))
		}
		err = core.Run(ctx, exp, runOpts...)
		stop()
		if err != nil {
			fmt.Fprintln(os.Stderr, "flight experiment failed:", err)
			os.Exit(1)
		}
		flight = exp.Report()
	}
	hwrep := core.RunHardwareExperiment()

	show := func(name string) bool { return *artifact == "all" || *artifact == name }

	if show("fig1") {
		fmt.Println(hwrep.MinFPSTable())
	}
	if show("fig3") {
		printFig3()
	}
	if show("fig4") {
		printFig4(hwrep)
	}
	if show("table1") {
		printTable1()
	}
	if show("fig5") {
		fmt.Println(hwrep.MemoryPlanTable(nn.L3))
	}
	if show("fig9") {
		printFig9(scale.Seed)
	}
	if show("fig10") {
		printFig10(flight)
	}
	if show("fig11") {
		printFig11(flight)
	}
	if show("fig12") {
		fmt.Println(hwrep.ForwardTable())
		fmt.Println(hwrep.BackwardTable())
	}
	if show("fig13") {
		fmt.Println(hwrep.FPSTable())
		fmt.Println(hwrep.SummaryTable())
	}
	if *csvDir != "" {
		if flight != nil {
			writeFlightCSVs(*csvDir, flight)
		}
		if err := writeCSVs(*csvDir, hwrep); err != nil {
			fmt.Fprintln(os.Stderr, "writing CSVs:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "CSV artifacts written to %s\n", *csvDir)
	}
}

// writeCSVs dumps the hardware tables as CSV files for plotting tools.
func writeCSVs(dir string, hwrep *core.HardwareReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := map[string]string{
		"fig1_minfps.csv":     hwrep.BuildMinFPSTable().CSV(),
		"fig12a_forward.csv":  hwrep.BuildForwardTable().CSV(),
		"fig12b_backward.csv": hwrep.BuildBackwardTable().CSV(),
		"fig13a_fps.csv":      hwrep.BuildFPSTable().CSV(),
		"fig13b_summary.csv":  hwrep.BuildSummaryTable().CSV(),
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// writeFlightCSVs dumps the Fig. 10 learning curves and the Fig. 11 rows.
func writeFlightCSVs(dir string, flight *core.FlightReport) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	curves := report.New("", "env", "config", "point", "cumulative_reward", "return")
	fig11 := report.New("", "env", "config", "sfd_m", "normalized_sfd", "crashes")
	for _, er := range flight.Envs {
		for _, run := range er.Runs {
			for i := range run.RewardSeries {
				ret := 0.0
				if i < len(run.ReturnSeries) {
					ret = run.ReturnSeries[i]
				}
				curves.Addf(er.Env, run.Config.String(), i, run.RewardSeries[i], ret)
			}
			fig11.Addf(er.Env, run.Config.String(), run.SFD, run.NormalizedSFD, run.Crashes)
		}
	}
	for name, content := range map[string]string{
		"fig10_curves.csv": curves.CSV(),
		"fig11_sfd.csv":    fig11.CSV(),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}

func printFig3() {
	spec := nn.ModifiedAlexNetSpec()
	t := report.New("Fig. 3(a) — modified AlexNet weight census",
		"Layer", "#neurons", "#weights", "% total", "% cumulative")
	for _, r := range spec.WeightCensus() {
		if r.Layer == "output" {
			t.Addf(r.Layer, r.Neurons, "", "", "")
			continue
		}
		t.Addf(r.Layer, r.Neurons, r.Weights, r.PctTotal, r.PctCumulative)
	}
	t.Addf("sum", spec.NeuronSum(), spec.FCWeights(), "", "")
	fmt.Println(t.String())

	t2 := report.New("Fig. 3(b) — online-trained weight fraction per topology",
		"Config", "Trained FC layers", "Trained weights", "% of total")
	for _, cfg := range nn.Configs {
		k := cfg.TrainedFCLayers()
		kd := fmt.Sprint(k)
		if k < 0 {
			kd = "all layers"
		}
		t2.Addf(cfg.String(), kd, spec.TrainedWeights(cfg), 100*spec.TrainedFraction(cfg))
	}
	fmt.Println(t2.String())
}

func printFig4(hwrep *core.HardwareReport) {
	p := hwrep.Params
	t := report.New("Fig. 4(b) — system parameters", "Parameter", "Value")
	t.Add("Technology", p.Technology)
	t.Add("Number of PEs", fmt.Sprintf("%d (%d row, %d column)", p.PEs, p.ArrayRows, p.ArrayCols))
	t.Add("Global buffer/scratchpad", fmt.Sprintf("%.0fMB/%.1fMB", p.GlobalBufferMB, p.ScratchpadMB))
	t.Add("Register file per PE", fmt.Sprintf("%.1fKB", p.RFPerPEKB))
	t.Add("Operation voltage", fmt.Sprintf("%.1fV", p.VoltageV))
	t.Add("Clock speed", fmt.Sprintf("%.0fGhz", p.ClockGHz))
	t.Add("Peak throughput", fmt.Sprintf("%.1fTOPS/W", p.PeakTOPSperW))
	t.Add("Arithmetic precision", p.Precision)
	t.Add("Bandwidth between PEs", fmt.Sprintf("%d bit", p.PEBandwidthBit))
	t.Add("MRAM stack I/O", fmt.Sprintf("%d IOs x %.0f Gbit/s", p.HBMIOs, p.HBMGbpsPerIO))
	fmt.Println(t.String())
}

func printTable1() {
	d := mem.STTMRAM()
	t := report.New("Table 1 — STT-MRAM parameters", "Write latency", "Read latency", "Write energy", "Read energy")
	t.Add(fmt.Sprintf("%.0fns", d.WriteLatencyNS), fmt.Sprintf("%.0fns", d.ReadLatencyNS),
		fmt.Sprintf("%.1fpJ/bit", d.WriteEnergyPJPerBit), fmt.Sprintf("%.1fpJ/bit", d.ReadEnergyPJPerBit))
	fmt.Println(t.String())
}

func printFig9(seed int64) {
	fmt.Println("Fig. 9 — test environments (top-down maps)")
	for _, w := range env.TestEnvironments(seed) {
		fmt.Println(w.Render(72, 24))
	}
}

func printFig10(flight *core.FlightReport) {
	fmt.Println("Fig. 10 — cumulative reward and return during online RL")
	for _, er := range flight.Envs {
		fmt.Printf("\n(%s)\n", er.Env)
		t := report.New("", "Config", "cumulative reward (start->end)", "final", "return curve", "final")
		for _, run := range er.Runs {
			t.Add(run.Config.String(),
				report.Sparkline(run.RewardSeries, 40),
				report.Num(last(run.RewardSeries)),
				report.Sparkline(run.ReturnSeries, 40),
				report.Num(last(run.ReturnSeries)))
		}
		fmt.Println(t.String())
	}
}

func printFig11(flight *core.FlightReport) {
	t := report.New("Fig. 11 — normalized safe flight distance (vs E2E)",
		"Environment", "L2", "L3", "L4", "E2E", "worst Li degradation %")
	for _, er := range flight.Envs {
		cells := []interface{}{er.Env}
		for _, cfg := range []nn.Config{nn.L2, nn.L3, nn.L4, nn.E2E} {
			run, _ := er.Run(cfg)
			cells = append(cells, run.NormalizedSFD)
		}
		cells = append(cells, er.WorstLiDegradationPct)
		t.Addf(cells...)
	}
	fmt.Println(t.String())

	t2 := report.New("raw safe flight distance (m) and total eval crashes",
		"Environment", "L2 m", "(crash)", "L3 m", "(crash)", "L4 m", "(crash)", "E2E m", "(crash)")
	for _, er := range flight.Envs {
		cells := []interface{}{er.Env}
		for _, cfg := range []nn.Config{nn.L2, nn.L3, nn.L4, nn.E2E} {
			run, _ := er.Run(cfg)
			cells = append(cells, run.SFD, run.Crashes)
		}
		t2.Addf(cells...)
	}
	fmt.Println(t2.String())
}

func last(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}
