// Package dronerl reproduces "Transfer and Online Reinforcement Learning in
// STT-MRAM Based Embedded Systems for Autonomous Drones" (Yoon, Anwar,
// Rakshit, Raychowdhury — DATE 2019).
//
// The library has two coupled halves:
//
//   - The algorithm: a CNN Q-learning agent for camera-based drone
//     navigation, trained by transfer learning on meta-environments and
//     online RL over only the last few fully-connected layers
//     (internal/nn, internal/rl, internal/env, internal/transfer).
//   - The hardware: a 32x32 systolic PE array with an on-die SRAM buffer
//     and a 3D-stacked STT-MRAM holding the frozen weights, priced by an
//     analytical latency/energy model (internal/systolic, internal/mem,
//     internal/hw).
//
// Experiments compose from four first-class concepts (see api.go): a
// scenario catalog (Scenarios, RegisterScenario), a validated Spec built
// from functional options (New, WithTopology, WithGamma, ...), a compute
// backend the trained policy deploys onto for greedy evaluation
// (WithBackend: Float, Quant or Systolic, the last charging per-run energy
// ledgers from the hardware model), and a unified context-aware engine
// (Run, WithWorkers, WithProgress) that executes any Experiment with
// deterministic, worker-count-independent results. See README.md for a
// tour, the MIGRATION section there for the old entry points, and
// EXPERIMENTS.md for the paper-vs-model comparison.
package dronerl

import (
	"dronerl/internal/core"
	"dronerl/internal/env"
	"dronerl/internal/hw"
	"dronerl/internal/nn"
	"dronerl/internal/rl"
	"dronerl/internal/transfer"
)

// Training topologies (re-exported from internal/nn): E2E trains the whole
// network; L2/L3/L4 train the last 2/3/4 FC layers on a transferred model.
const (
	E2E = nn.E2E
	L2  = nn.L2
	L3  = nn.L3
	L4  = nn.L4
)

// Config selects a training topology.
type Config = nn.Config

// FlightScale sets the iteration budget of a flight-learning experiment.
type FlightScale = core.FlightScale

// FlightReport is the Fig. 10/11 reproduction output.
type FlightReport = core.FlightReport

// HardwareReport bundles the Fig. 1/4/5/12/13 artifacts.
type HardwareReport = core.HardwareReport

// FullScale returns the figure-quality iteration budget.
func FullScale() FlightScale { return core.FullScale() }

// QuickScale returns a CI-sized iteration budget.
func QuickScale() FlightScale { return core.QuickScale() }

// RunFlightExperiment reproduces the learning-quality evaluation
// (Fig. 10 cumulative reward / return curves, Fig. 11 safe flight
// distance) across the four test environments and four topologies.
//
// Deprecated: build the experiment with New(...).Flight() and execute it
// with Run, which adds context cancellation, scenario selection, agent
// hyper-parameter overrides and progress streaming. This wrapper remains
// for existing call sites and produces bit-identical output.
func RunFlightExperiment(scale FlightScale) (*FlightReport, error) {
	return core.RunFlightExperiment(scale)
}

// RunHardwareExperiment evaluates the hardware performance model,
// regenerating the per-layer cost tables (Fig. 12), the FPS and summary
// charts (Fig. 13), the minimum-FPS table (Fig. 1) and the memory mapping
// (Fig. 5).
func RunHardwareExperiment() *HardwareReport {
	return core.RunHardwareExperiment()
}

// NewHardwareModel returns the analytical model of the paper's platform
// for custom studies (sweeps over batch size, SRAM capacity, devices).
func NewHardwareModel() *hw.Model { return hw.NewModel() }

// NewAgent builds a Q-learning agent over the scaled NavNet architecture,
// ready to fly in any environment from the scenario catalog.
//
// Deprecated: use New(WithTopology(cfg), ...).Agent(), whose option layer
// validates hyper-parameters and distinguishes explicit zeros from unset
// fields (an rl.Options literal cannot express EpsEnd=0 or GradClip=0).
func NewAgent(cfg Config, opts rl.Options) *rl.Agent {
	return rl.NewAgent(nn.NavNetSpec(), cfg, opts)
}

// TestEnvironments returns the four test worlds (indoor apartment, indoor
// house, outdoor forest, outdoor town).
//
// Deprecated: the worlds are scenarios now — Scenarios lists the catalog
// and each entry builds with its own seed. This wrapper keeps the
// historical quartet (and its exact seed derivation) alive.
func TestEnvironments(seed int64) []*env.World { return env.TestEnvironments(seed) }

// MetaTrain trains an end-to-end model on the meta-environment matching
// the given world's kind and returns the transferable snapshot.
func MetaTrain(test *env.World, iterations int, opts rl.Options) *nn.Snapshot {
	meta := env.MetaFor(test, opts.Seed+1000)
	snap, _ := transfer.MetaTrain(meta, nn.NavNetSpec(), iterations, opts)
	return snap
}

// Deploy installs a transferred snapshot into a new agent frozen per cfg.
//
// Deprecated: use New(WithTopology(cfg), ...).Deploy(snapshot), which
// validates the options and checks the snapshot's architecture and version.
func Deploy(snapshot *nn.Snapshot, cfg Config, opts rl.Options) (*rl.Agent, error) {
	return transferDeploy(snapshot, cfg, opts)
}

// transferDeploy is the shared deployment path of Deploy and Spec.Deploy.
func transferDeploy(snapshot *nn.Snapshot, cfg Config, opts rl.Options) (*rl.Agent, error) {
	return transfer.Deploy(snapshot, nn.NavNetSpec(), cfg, opts)
}
