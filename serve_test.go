package dronerl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"dronerl/internal/nn"
)

// TestServeFacade boots the daemon through the root API on a random port,
// round-trips one inference and a hot reload over HTTP, and checks ctx
// cancellation drains cleanly — the facade-level acceptance of the serving
// subsystem.
func TestServeFacade(t *testing.T) {
	spec := nn.NavNetSpec()
	build := func(seed int64) *nn.Snapshot {
		net := spec.Build()
		net.Init(rand.New(rand.NewSource(seed)))
		return nn.TakeSnapshot(net, spec.Name)
	}

	const addr = "127.0.0.1:39857"
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() {
		served <- Serve(ctx, ServeConfig{Addr: addr, Snapshot: build(1), Workers: 1})
	}()
	base := "http://" + addr
	waitHealthy(t, base)

	obs := make([]float32, nn.NavNetInput*nn.NavNetInput)
	body, _ := json.Marshal(map[string]any{"obs": obs})
	resp, err := http.Post(base+"/v1/act", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Action        int       `json:"action"`
		Q             []float32 `json:"q"`
		PolicyVersion uint64    `json:"policy_version"`
	}
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(rep.Q) != 5 || rep.PolicyVersion != 1 {
		t.Fatalf("act: status %d reply %+v", resp.StatusCode, rep)
	}

	var gobBuf bytes.Buffer
	if err := build(2).Encode(&gobBuf); err != nil {
		t.Fatal(err)
	}
	r2, err := http.Post(base+"/v1/policy", "application/octet-stream", &gobBuf)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d", r2.StatusCode)
	}

	var st ServeStats
	r3, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r3.Body).Decode(&st)
	r3.Body.Close()
	if st.PolicyVersion != 2 || st.Served != 1 {
		t.Fatalf("stats %+v", st)
	}

	cancel()
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v on cancellation, want nil", err)
	}
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal(fmt.Errorf("daemon never became healthy at %s", base))
}
